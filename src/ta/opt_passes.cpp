#include "ta/opt_passes.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <tuple>

#include "dbm/dbm.hpp"
#include "ta/ir.hpp"

namespace ta {

// ------------------------------------------------------------------------
// Shared analyses (the lint passes call these too — see ta/lint.cpp).
// ------------------------------------------------------------------------

bool isConstExpr(const ExprPool& pool, ExprRef e) {
  if (e == kNoExpr) return true;
  const ExprNode& n = pool.node(e);
  switch (n.op) {
    case Op::kConst: return true;
    case Op::kVar: return false;
    case Op::kNeg:
    case Op::kNot: return isConstExpr(pool, n.a);
    case Op::kIte:
      return isConstExpr(pool, n.a) && isConstExpr(pool, n.b) &&
             isConstExpr(pool, n.c);
    default: return isConstExpr(pool, n.a) && isConstExpr(pool, n.b);
  }
}

EdgeViability classifyEdgeViability(
    const ExprPool& pool, ExprRef guard,
    std::span<const ClockConstraint> clockGuard,
    std::span<const ClockConstraint> sourceInvariant, uint32_t dim) {
  // Precedence mirrors the linter: constant-false integer guard first,
  // then the clock guard alone, then its conjunction with the source
  // invariant.
  if (guard != kNoExpr && isConstExpr(pool, guard)) {
    bool ok = true;
    const int64_t v = pool.eval(guard, {}, &ok);
    if (ok && v == 0) return EdgeViability::kConstFalseGuard;
  }
  if (clockGuard.empty()) return EdgeViability::kViable;

  dbm::Dbm zone = dbm::Dbm::unconstrained(dim);
  bool guardSat = true;
  for (const ClockConstraint& cc : clockGuard) {
    guardSat = zone.constrain(static_cast<uint32_t>(cc.i),
                              static_cast<uint32_t>(cc.j), cc.bound) &&
               guardSat;
  }
  if (!guardSat) return EdgeViability::kClockGuardUnsat;
  bool withInv = true;
  for (const ClockConstraint& cc : sourceInvariant) {
    withInv = zone.constrain(static_cast<uint32_t>(cc.i),
                             static_cast<uint32_t>(cc.j), cc.bound) &&
              withInv;
  }
  if (!withInv) return EdgeViability::kGuardContradictsInvariant;
  return EdgeViability::kViable;
}

std::vector<bool> reachableLocations(
    size_t numLocations, LocId initial,
    std::span<const std::pair<LocId, LocId>> edges) {
  std::vector<bool> seen(numLocations, false);
  if (numLocations == 0) return seen;
  std::vector<LocId> work{initial};
  seen[static_cast<size_t>(initial)] = true;
  while (!work.empty()) {
    const LocId l = work.back();
    work.pop_back();
    for (const auto& [src, dst] : edges) {
      if (src == l && !seen[static_cast<size_t>(dst)]) {
        seen[static_cast<size_t>(dst)] = true;
        work.push_back(dst);
      }
    }
  }
  return seen;
}

void collectExprReads(const ExprPool& pool, ExprRef e,
                      std::vector<uint8_t>& read) {
  if (e == kNoExpr) return;
  const ExprNode& n = pool.node(e);
  switch (n.op) {
    case Op::kConst:
      return;
    case Op::kVar:
      if (n.b == kNoExpr) {
        read[static_cast<size_t>(n.a)] = 1;
      } else {
        const ExprNode& idx = pool.node(n.b);
        if (idx.op == Op::kConst) {
          // A constant index reads exactly one cell (out-of-range
          // indices read nothing — evaluation fails first).
          if (idx.a >= 0 && idx.a < n.c) {
            read[static_cast<size_t>(n.a + idx.a)] = 1;
          }
        } else {
          for (int32_t k = 0; k < n.c; ++k) {
            read[static_cast<size_t>(n.a + k)] = 1;
          }
        }
        collectExprReads(pool, n.b, read);
      }
      return;
    case Op::kNeg:
    case Op::kNot:
      collectExprReads(pool, n.a, read);
      return;
    case Op::kIte:
      collectExprReads(pool, n.a, read);
      collectExprReads(pool, n.b, read);
      collectExprReads(pool, n.c, read);
      return;
    default:
      collectExprReads(pool, n.a, read);
      collectExprReads(pool, n.b, read);
      return;
  }
}

// ------------------------------------------------------------------------
// Constant folding.
// ------------------------------------------------------------------------

namespace {

constexpr int64_t kI32Min = std::numeric_limits<int32_t>::min();
constexpr int64_t kI32Max = std::numeric_limits<int32_t>::max();

[[nodiscard]] bool isConstNode(const ExprPool& pool, ExprRef e,
                               int64_t* value) {
  if (e == kNoExpr) return false;
  const ExprNode& n = pool.node(e);
  if (n.op != Op::kConst) return false;
  *value = n.a;
  return true;
}

}  // namespace

ExprRef foldExpr(ExprPool& pool, ExprRef e, std::span<const uint8_t> isConst,
                 std::span<const int32_t> constVal, size_t* applied) {
  if (e == kNoExpr) return e;
  const ExprNode n = pool.node(e);  // copy: the pool may grow below
  const auto rewrite = [&](ExprRef r) {
    ++*applied;
    return r;
  };
  const auto constant = [&](int64_t v) { return rewrite(pool.constant(static_cast<int32_t>(v))); };

  switch (n.op) {
    case Op::kConst:
      return e;
    case Op::kVar: {
      if (n.b == kNoExpr) {
        const auto v = static_cast<size_t>(n.a);
        if (v < isConst.size() && isConst[v] != 0) {
          return constant(constVal[v]);
        }
        return e;
      }
      const ExprRef idx = foldExpr(pool, n.b, isConst, constVal, applied);
      int64_t iv = 0;
      if (isConstNode(pool, idx, &iv) && iv >= 0 && iv < n.c) {
        // Scalarize: a[2] is the cell with id base+2. Out-of-range
        // constant indices stay symbolic so evaluation still fails.
        const auto cell = static_cast<size_t>(n.a + iv);
        if (cell < isConst.size() && isConst[cell] != 0) {
          return constant(constVal[cell]);
        }
        return rewrite(pool.var(static_cast<VarId>(n.a + iv)));
      }
      if (idx != n.b) return rewrite(pool.arrayCell(n.a, idx, n.c));
      return e;
    }
    case Op::kNeg: {
      const ExprRef a = foldExpr(pool, n.a, isConst, constVal, applied);
      int64_t av = 0;
      if (isConstNode(pool, a, &av) && -av >= kI32Min && -av <= kI32Max) {
        return constant(-av);
      }
      if (a != n.a) return rewrite(pool.unary(Op::kNeg, a));
      return e;
    }
    case Op::kNot: {
      const ExprRef a = foldExpr(pool, n.a, isConst, constVal, applied);
      int64_t av = 0;
      if (isConstNode(pool, a, &av)) return constant(av == 0 ? 1 : 0);
      if (a != n.a) return rewrite(pool.unary(Op::kNot, a));
      return e;
    }
    case Op::kIte: {
      const ExprRef c = foldExpr(pool, n.a, isConst, constVal, applied);
      int64_t cv = 0;
      if (isConstNode(pool, c, &cv)) {
        // eval only walks the taken branch, so dropping the other one
        // is exact (including its error behavior).
        return rewrite(
            foldExpr(pool, cv != 0 ? n.b : n.c, isConst, constVal, applied));
      }
      const ExprRef t = foldExpr(pool, n.b, isConst, constVal, applied);
      const ExprRef f = foldExpr(pool, n.c, isConst, constVal, applied);
      if (c != n.a || t != n.b || f != n.c) {
        return rewrite(pool.ite(c, t, f));
      }
      return e;
    }
    default:
      break;
  }

  // Binary operators.
  const ExprRef a = foldExpr(pool, n.a, isConst, constVal, applied);
  const ExprRef b = foldExpr(pool, n.b, isConst, constVal, applied);
  int64_t av = 0;
  int64_t bv = 0;
  const bool ac = isConstNode(pool, a, &av);
  const bool bc = isConstNode(pool, b, &bv);

  // Annihilators that are exact under ExprPool::eval's non-short-circuit
  // pure semantics: And with a constant-false side is 0, Or with a
  // constant-true side is 1. (Identity rewrites like And(1, x) -> x are
  // NOT exact — eval booleanizes x — so they are left alone.)
  if (n.op == Op::kAnd && ((ac && av == 0) || (bc && bv == 0))) {
    return constant(0);
  }
  if (n.op == Op::kOr && ((ac && av != 0) || (bc && bv != 0))) {
    return constant(1);
  }

  if (ac && bc) {
    int64_t v = 0;
    bool foldable = true;
    switch (n.op) {
      case Op::kAdd: v = av + bv; break;
      case Op::kSub: v = av - bv; break;
      case Op::kMul: v = av * bv; break;
      case Op::kDiv:
        // Division/modulo by zero must keep failing at evaluation time.
        if (bv == 0) foldable = false;
        else v = av / bv;
        break;
      case Op::kMod:
        if (bv == 0) foldable = false;
        else v = av % bv;
        break;
      case Op::kLt: v = av < bv; break;
      case Op::kLe: v = av <= bv; break;
      case Op::kEq: v = av == bv; break;
      case Op::kNe: v = av != bv; break;
      case Op::kGe: v = av >= bv; break;
      case Op::kGt: v = av > bv; break;
      case Op::kAnd: v = (av != 0 && bv != 0) ? 1 : 0; break;
      case Op::kOr: v = (av != 0 || bv != 0) ? 1 : 0; break;
      case Op::kMin: v = std::min(av, bv); break;
      case Op::kMax: v = std::max(av, bv); break;
      default: foldable = false; break;
    }
    if (foldable && v >= kI32Min && v <= kI32Max) return constant(v);
  }
  if (a != n.a || b != n.b) return rewrite(pool.binary(n.op, a, b));
  return e;
}

// ------------------------------------------------------------------------
// Pass 1: constant folding + constant-variable propagation.
// ------------------------------------------------------------------------

namespace {

/// Cells some assignment may write. Like the lint usage collector, a
/// non-constant index taints the whole array range.
std::vector<uint8_t> assignedCells(const Ir& ir) {
  std::vector<uint8_t> assigned(ir.varInit.size(), 0);
  for (const IrProcess& p : ir.procs) {
    for (const IrEdge& e : p.edges) {
      for (const Assign& as : e.assigns) {
        if (as.index == kNoExpr) {
          assigned[static_cast<size_t>(as.base)] = 1;
          continue;
        }
        const ExprNode& idx = ir.pool.node(as.index);
        if (idx.op == Op::kConst) {
          if (idx.a >= 0 && idx.a < as.arraySize) {
            assigned[static_cast<size_t>(as.base + idx.a)] = 1;
          }
        } else {
          for (int32_t k = 0; k < as.arraySize; ++k) {
            assigned[static_cast<size_t>(as.base + k)] = 1;
          }
        }
      }
    }
  }
  return assigned;
}

}  // namespace

bool passConstFold(Ir& ir, PassStats& st) {
  // A variable no assignment can ever write holds its initial value in
  // every reachable state — propagate it. (Location reachability is not
  // needed: an unreachable write is still a write; the dead passes will
  // remove it and the next fixpoint round picks the constant up.)
  const std::vector<uint8_t> assigned = assignedCells(ir);
  std::vector<uint8_t> isConst(assigned.size());
  for (size_t v = 0; v < assigned.size(); ++v) isConst[v] = assigned[v] == 0;

  size_t applied = 0;
  for (IrProcess& p : ir.procs) {
    for (IrEdge& e : p.edges) {
      e.guard = foldExpr(ir.pool, e.guard, isConst, ir.varInit, &applied);
      // A guard folded to a nonzero constant is the absent (true) guard.
      if (e.guard != kNoExpr) {
        const ExprNode& g = ir.pool.node(e.guard);
        if (g.op == Op::kConst && g.a != 0) {
          e.guard = kNoExpr;
          ++applied;
        }
      }
      for (Assign& as : e.assigns) {
        as.rhs = foldExpr(ir.pool, as.rhs, isConst, ir.varInit, &applied);
        if (as.index == kNoExpr) continue;
        as.index = foldExpr(ir.pool, as.index, isConst, ir.varInit, &applied);
        const ExprNode& idx = ir.pool.node(as.index);
        if (idx.op == Op::kConst && idx.a >= 0 && idx.a < as.arraySize) {
          // Scalarize the write; later rounds see a smaller write set.
          as.base += idx.a;
          as.index = kNoExpr;
          as.arraySize = 1;
          ++applied;
        }
      }
    }
  }
  st.foldedExprs += applied;
  return applied != 0;
}

// ------------------------------------------------------------------------
// Pass 2a: never-enabled edge elimination (shared with lint L005/L006).
// ------------------------------------------------------------------------

bool passRemoveNeverEnabledEdges(Ir& ir, PassStats& st) {
  bool changed = false;
  for (IrProcess& p : ir.procs) {
    for (size_t ei = 0; ei < p.edges.size();) {
      const IrEdge& e = p.edges[ei];
      const EdgeViability v = classifyEdgeViability(
          ir.pool, e.guard, e.clockGuard,
          p.locs[static_cast<size_t>(e.src)].invariant, ir.dim());
      bool remove = v != EdgeViability::kViable;
      // A broadcast *receiver* participates iff its integer guard holds
      // — the engine never evaluates receiver clock guards when
      // assembling the maximal receiver set. Removing one for a
      // clock-guard reason would change which broadcasts fire, so only
      // the integer-guard-false case (where the engine agrees the edge
      // is out) is removable.
      if (remove && v != EdgeViability::kConstFalseGuard &&
          e.sync == Sync::kReceive && e.chan >= 0 &&
          ir.chanKinds[static_cast<size_t>(e.chan)] == ChanKind::kBroadcast) {
        remove = false;
      }
      if (remove) {
        p.edges.erase(p.edges.begin() + static_cast<std::ptrdiff_t>(ei));
        ++st.removedEdges;
        changed = true;
      } else {
        ++ei;
      }
    }
  }
  return changed;
}

// ------------------------------------------------------------------------
// Pass 2b: dead-location elimination (shared with lint L004).
// ------------------------------------------------------------------------

bool passRemoveDeadLocations(Ir& ir, PassStats& st) {
  bool changed = false;
  for (size_t ip = 0; ip < ir.procs.size(); ++ip) {
    IrProcess& p = ir.procs[ip];
    std::vector<std::pair<LocId, LocId>> pairs;
    pairs.reserve(p.edges.size());
    for (const IrEdge& e : p.edges) pairs.push_back({e.src, e.dst});
    const std::vector<bool> reach =
        reachableLocations(p.locs.size(), p.init, pairs);

    std::vector<LocId> remap(p.locs.size(), -1);
    LocId next = 0;
    for (size_t l = 0; l < p.locs.size(); ++l) {
      if (reach[l] || p.locs[l].pinned) remap[l] = next++;
    }
    if (static_cast<size_t>(next) == p.locs.size()) continue;
    changed = true;
    st.removedLocations += p.locs.size() - static_cast<size_t>(next);

    std::vector<IrLocation> keptLocs;
    keptLocs.reserve(static_cast<size_t>(next));
    for (size_t l = 0; l < p.locs.size(); ++l) {
      if (remap[l] >= 0) keptLocs.push_back(std::move(p.locs[l]));
    }
    p.locs = std::move(keptLocs);
    p.init = remap[static_cast<size_t>(p.init)];

    // Drop edges touching a removed location (their source is
    // unreachable, or they leave a pinned-but-unreachable location for
    // a removed one — either way they can never fire).
    for (size_t ei = 0; ei < p.edges.size();) {
      IrEdge& e = p.edges[ei];
      if (remap[static_cast<size_t>(e.src)] < 0 ||
          remap[static_cast<size_t>(e.dst)] < 0) {
        p.edges.erase(p.edges.begin() + static_cast<std::ptrdiff_t>(ei));
        ++st.removedEdges;
      } else {
        e.src = remap[static_cast<size_t>(e.src)];
        e.dst = remap[static_cast<size_t>(e.dst)];
        ++ei;
      }
    }

    // Keep the original-location map current.
    for (size_t op = 0; op < ir.locOf.size(); ++op) {
      if (ir.procOf[op] != static_cast<int32_t>(ip)) continue;
      for (LocId& l : ir.locOf[op]) {
        if (l >= 0) l = remap[static_cast<size_t>(l)];
      }
    }
  }
  return changed;
}

// ------------------------------------------------------------------------
// Pass 3: DBM-exact guard simplification.
// ------------------------------------------------------------------------

bool passSimplifyGuards(Ir& ir, PassStats& st) {
  const uint32_t dim = ir.dim();
  bool changed = false;
  for (IrProcess& p : ir.procs) {
    for (IrEdge& e : p.edges) {
      auto& cg = e.clockGuard;
      if (cg.empty()) continue;
      const auto& inv = p.locs[static_cast<size_t>(e.src)].invariant;
      bool again = true;
      while (again && !cg.empty()) {
        again = false;
        for (size_t k = 0; k < cg.size(); ++k) {
          // Context: source invariant plus the other conjuncts. Engine
          // states satisfy the source invariant before the guard is
          // applied, so a conjunct the context implies never constrains
          // anything.
          dbm::Dbm z = dbm::Dbm::unconstrained(dim);
          bool ok = true;
          for (const ClockConstraint& cc : inv) {
            if (!z.constrain(static_cast<uint32_t>(cc.i),
                             static_cast<uint32_t>(cc.j), cc.bound)) {
              ok = false;
              break;
            }
          }
          for (size_t m = 0; ok && m < cg.size(); ++m) {
            if (m == k) continue;
            if (!z.constrain(static_cast<uint32_t>(cg[m].i),
                             static_cast<uint32_t>(cg[m].j), cg[m].bound)) {
              ok = false;
            }
          }
          // An empty context means the edge can never fire; leave that
          // verdict to the shared viability analysis.
          if (!ok) break;
          if (z.at(static_cast<uint32_t>(cg[k].i),
                   static_cast<uint32_t>(cg[k].j)) <= cg[k].bound) {
            cg.erase(cg.begin() + static_cast<std::ptrdiff_t>(k));
            ++st.simplifiedConstraints;
            changed = true;
            again = true;
            break;
          }
        }
      }
    }
  }
  return changed;
}

// ------------------------------------------------------------------------
// Pass 4: dead-store elimination.
// ------------------------------------------------------------------------

namespace {

/// True when evaluating `e` can never set ok=false: no division/modulo
/// and every array access has a constant in-range index. Dropping an
/// assignment whose rhs could fail would enable a transition the
/// original model rejects.
bool exprTotal(const ExprPool& pool, ExprRef e) {
  if (e == kNoExpr) return true;
  const ExprNode& n = pool.node(e);
  switch (n.op) {
    case Op::kConst: return true;
    case Op::kVar: {
      if (n.b == kNoExpr) return true;
      const ExprNode& idx = pool.node(n.b);
      return idx.op == Op::kConst && idx.a >= 0 && idx.a < n.c &&
             exprTotal(pool, n.b);
    }
    case Op::kDiv:
    case Op::kMod: {
      // Division only fails on a zero divisor; a constant nonzero
      // divisor (the bounded-counter idiom `(n + 1) % k`) is total.
      const ExprNode& d = pool.node(n.b);
      return d.op == Op::kConst && d.a != 0 && exprTotal(pool, n.a);
    }
    case Op::kNeg:
    case Op::kNot: return exprTotal(pool, n.a);
    case Op::kIte:
      return exprTotal(pool, n.a) && exprTotal(pool, n.b) &&
             exprTotal(pool, n.c);
    default: return exprTotal(pool, n.a) && exprTotal(pool, n.b);
  }
}

}  // namespace

bool passDropDeadStores(Ir& ir, const OptPins& pins, PassStats& st) {
  // Liveness: a variable cell is live when a guard or the goal
  // predicate (pins) reads it, or when a *surviving* assignment's rhs
  // or index reads it. Reads performed by assignments that are
  // themselves about to be dropped do not count — otherwise a bounded
  // event counter (`events = (events + 1) % 8`, written everywhere,
  // read by nothing else) keeps itself alive through its own
  // increment. Computed as a fixpoint: an assignment survives when it
  // can fail at runtime (a guard in disguise — division by a variable,
  // dynamic index) or when a cell it may write is live; surviving
  // assignments then contribute their reads. Variables stay declared
  // (no renumbering) — a dead store's variable simply freezes at its
  // initial value, which merges discrete states that differed only in
  // it.
  std::vector<uint8_t> live(ir.varInit.size(), 0);
  for (const VarId v : pins.vars) live[static_cast<size_t>(v)] = 1;
  for (const IrProcess& p : ir.procs) {
    for (const IrEdge& e : p.edges) collectExprReads(ir.pool, e.guard, live);
  }

  // Evaluation failures (division by zero, bad index) disable the
  // whole transition; an assignment that can fail must stay.
  const auto assignTotal = [&](const Assign& as) {
    return exprTotal(ir.pool, as.rhs) &&
           (as.index == kNoExpr || exprTotal(ir.pool, as.index));
  };
  const auto writesLiveCell = [&](const Assign& as) {
    if (as.index == kNoExpr) return live[static_cast<size_t>(as.base)] != 0;
    const ExprNode& idx = ir.pool.node(as.index);
    if (idx.op == Op::kConst && idx.a >= 0 && idx.a < as.arraySize) {
      return live[static_cast<size_t>(as.base + idx.a)] != 0;
    }
    for (int32_t k = 0; k < as.arraySize; ++k) {
      if (live[static_cast<size_t>(as.base + k)] != 0) return true;
    }
    return false;
  };
  const auto markWrites = [&](const Assign& as) {
    if (as.index == kNoExpr) {
      live[static_cast<size_t>(as.base)] = 1;
      return;
    }
    const ExprNode& idx = ir.pool.node(as.index);
    if (idx.op == Op::kConst && idx.a >= 0 && idx.a < as.arraySize) {
      live[static_cast<size_t>(as.base + idx.a)] = 1;
      return;
    }
    for (int32_t k = 0; k < as.arraySize; ++k) {
      live[static_cast<size_t>(as.base + k)] = 1;
    }
  };

  const auto liveCount = [&] {
    size_t n = 0;
    for (const uint8_t b : live) n += b;
    return n;
  };
  for (size_t before = liveCount();; before = liveCount()) {
    for (const IrProcess& p : ir.procs) {
      for (const IrEdge& e : p.edges) {
        for (const Assign& as : e.assigns) {
          if (!assignTotal(as)) {
            // Stays no matter what; its writes keep the variable
            // varying, so sibling (total) stores must stay too.
            markWrites(as);
          } else if (!writesLiveCell(as)) {
            continue;
          }
          collectExprReads(ir.pool, as.rhs, live);
          if (as.index != kNoExpr) {
            collectExprReads(ir.pool, as.index, live);
          }
        }
      }
    }
    if (liveCount() == before) break;
  }

  bool changed = false;
  for (IrProcess& p : ir.procs) {
    for (IrEdge& e : p.edges) {
      for (size_t ai = 0; ai < e.assigns.size();) {
        const Assign& as = e.assigns[ai];
        if (assignTotal(as) && !writesLiveCell(as)) {
          if (ir.elidedSeen[static_cast<size_t>(as.base)] == 0) {
            ir.elidedSeen[static_cast<size_t>(as.base)] = 1;
            ++st.elidedVars;
          }
          e.assigns.erase(e.assigns.begin() +
                          static_cast<std::ptrdiff_t>(ai));
          changed = true;
        } else {
          ++ai;
        }
      }
    }
  }
  return changed;
}

// ------------------------------------------------------------------------
// Pass 5: clock-equality unification.
// ------------------------------------------------------------------------

bool passUnifyClocks(Ir& ir, const OptPins& pins, PassStats& st) {
  if (ir.numClocks < 2) return false;

  // Reset signature: the exact set of (process, edge, value) resets.
  // Two clocks with identical signatures start at 0 together and are
  // reset together to the same values forever — their valuations are
  // equal in every reachable state, so collapsing them onto one
  // representative is an exact bisimulation (see DESIGN.md).
  // Only clocks still live (in the image of the cumulative clockRep
  // map) participate; merged-away clocks all have empty signatures and
  // would otherwise re-merge every round.
  std::vector<uint8_t> liveClock(ir.numClocks + 1, 0);
  for (ClockId c = 1; c <= static_cast<ClockId>(ir.numClocks); ++c) {
    liveClock[static_cast<size_t>(ir.clockRep[static_cast<size_t>(c)])] = 1;
  }

  std::map<std::vector<std::tuple<size_t, size_t, dbm::value_t>>,
           std::vector<ClockId>>
      groups;
  {
    std::vector<std::vector<std::tuple<size_t, size_t, dbm::value_t>>> sig(
        ir.numClocks + 1);
    for (size_t ip = 0; ip < ir.procs.size(); ++ip) {
      for (size_t ei = 0; ei < ir.procs[ip].edges.size(); ++ei) {
        for (const ClockReset& r : ir.procs[ip].edges[ei].resets) {
          sig[static_cast<size_t>(r.clock)].push_back({ip, ei, r.value});
        }
      }
    }
    for (ClockId c = 1; c <= static_cast<ClockId>(ir.numClocks); ++c) {
      if (liveClock[static_cast<size_t>(c)] == 0) continue;
      auto& s = sig[static_cast<size_t>(c)];
      std::sort(s.begin(), s.end());
      s.erase(std::unique(s.begin(), s.end()), s.end());
      groups[s].push_back(c);
    }
  }

  std::vector<ClockId> rep(ir.numClocks + 1);
  for (size_t c = 0; c < rep.size(); ++c) rep[c] = static_cast<ClockId>(c);
  bool anyGroup = false;
  for (const auto& [signature, members] : groups) {
    if (members.size() < 2) continue;
    anyGroup = true;
    for (const ClockId c : members) rep[static_cast<size_t>(c)] = members[0];
  }
  if (!anyGroup) return false;

  // Gate: a constraint between two merged clocks degenerates to
  // x - x <bound> b. On edge guards a false diagonal just kills the
  // edge (handled below); on invariants or pinned goal constraints it
  // would misstate the model, so any such case vetoes the whole round
  // (conservative and, with weak-0-satisfiable bounds, vanishingly
  // rare).
  const auto degenerateUnsat = [&](const ClockConstraint& cc) {
    return cc.i != 0 && cc.j != 0 &&
           rep[static_cast<size_t>(cc.i)] == rep[static_cast<size_t>(cc.j)] &&
           cc.bound < dbm::boundWeak(0);
  };
  for (const IrProcess& p : ir.procs) {
    for (const IrLocation& l : p.locs) {
      for (const ClockConstraint& cc : l.invariant) {
        if (degenerateUnsat(cc)) return false;
      }
    }
  }
  for (const ClockConstraint& cc : pins.clockConstraints) {
    if (degenerateUnsat(cc)) return false;
  }

  // Apply: rewrite constraints, drop satisfied diagonals, turn
  // unsatisfiable guard diagonals into a constant-false guard (the
  // edge-removal pass cuts those next round), merge duplicate resets.
  const auto rewriteList = [&](std::vector<ClockConstraint>& list,
                               bool* falsified) {
    for (size_t k = 0; k < list.size();) {
      ClockConstraint& cc = list[k];
      cc.i = rep[static_cast<size_t>(cc.i)];
      cc.j = rep[static_cast<size_t>(cc.j)];
      if (cc.i == cc.j) {
        if (cc.bound < dbm::boundWeak(0)) {
          if (falsified != nullptr) *falsified = true;
        }
        list.erase(list.begin() + static_cast<std::ptrdiff_t>(k));
      } else {
        ++k;
      }
    }
  };
  for (IrProcess& p : ir.procs) {
    for (IrLocation& l : p.locs) rewriteList(l.invariant, nullptr);
    for (IrEdge& e : p.edges) {
      bool falsified = false;
      rewriteList(e.clockGuard, &falsified);
      if (falsified) e.guard = ir.pool.constant(0);
      for (ClockReset& r : e.resets) {
        r.clock = rep[static_cast<size_t>(r.clock)];
      }
      std::sort(e.resets.begin(), e.resets.end(),
                [](const ClockReset& a, const ClockReset& b) {
                  return a.clock < b.clock;
                });
      e.resets.erase(std::unique(e.resets.begin(), e.resets.end(),
                                 [](const ClockReset& a, const ClockReset& b) {
                                   return a.clock == b.clock;
                                 }),
                     e.resets.end());
    }
  }

  // Fold into the cumulative original->representative map and count.
  size_t merged = 0;
  for (ClockId c = 1; c <= static_cast<ClockId>(ir.numClocks); ++c) {
    if (rep[static_cast<size_t>(c)] != c) ++merged;
  }
  for (ClockId& r : ir.clockRep) r = rep[static_cast<size_t>(r)];
  st.unifiedClocks += merged;
  return true;
}

// ------------------------------------------------------------------------
// Pass 6: composition of trivially-sequential automata pairs.
// ------------------------------------------------------------------------

namespace {

constexpr size_t kMaxProductLocs = 64;
constexpr size_t kMaxProductEdges = 400;

struct PairPlan {
  std::vector<uint8_t> privateChan;  ///< per channel: only {i, j} touch it
  size_t fusions = 0;
  bool viable = false;
};

PairPlan planPair(const Ir& ir, size_t i, size_t j) {
  PairPlan plan;
  const IrProcess& a = ir.procs[i];
  const IrProcess& b = ir.procs[j];
  if (a.pinned || b.pinned) return plan;
  for (const IrProcess* p : {&a, &b}) {
    for (const IrLocation& l : p->locs) {
      if (l.committed) return plan;  // committed product semantics differ
    }
    for (const IrEdge& e : p->edges) {
      if (e.sync != Sync::kNone &&
          ir.chanKinds[static_cast<size_t>(e.chan)] == ChanKind::kBroadcast) {
        return plan;  // receiver-multiplicity semantics; keep apart
      }
    }
  }
  if (a.locs.size() * b.locs.size() > kMaxProductLocs) return plan;

  // A channel is pair-private when no other process touches it.
  plan.privateChan.assign(ir.chanNames.size(), 1);
  for (size_t ip = 0; ip < ir.procs.size(); ++ip) {
    if (ip == i || ip == j) continue;
    for (const IrEdge& e : ir.procs[ip].edges) {
      if (e.sync != Sync::kNone) {
        plan.privateChan[static_cast<size_t>(e.chan)] = 0;
      }
    }
  }

  // On a shared (non-private) binary channel the two members must not
  // form a send/receive pair: fused into one process, the engine could
  // no longer pair them and the transition would be lost.
  const auto uses = [&](const IrProcess& p, ChanId c, Sync s) {
    for (const IrEdge& e : p.edges) {
      if (e.sync == s && e.chan == c) return true;
    }
    return false;
  };
  size_t nonPrivEdges = 0;
  for (const IrProcess* p : {&a, &b}) {
    for (const IrEdge& e : p->edges) {
      if (e.sync == Sync::kNone ||
          plan.privateChan[static_cast<size_t>(e.chan)] == 0) {
        ++nonPrivEdges;
      }
    }
  }
  for (ChanId c = 0; c < static_cast<ChanId>(ir.chanNames.size()); ++c) {
    if (plan.privateChan[static_cast<size_t>(c)] != 0) continue;
    if ((uses(a, c, Sync::kSend) && uses(b, c, Sync::kReceive)) ||
        (uses(b, c, Sync::kSend) && uses(a, c, Sync::kReceive))) {
      return plan;
    }
  }

  // Count the fusions; composing is only worth it (and only "trivially
  // sequential") when at least one private handshake exists.
  for (ChanId c = 0; c < static_cast<ChanId>(ir.chanNames.size()); ++c) {
    if (plan.privateChan[static_cast<size_t>(c)] == 0) continue;
    size_t sendsA = 0;
    size_t recvA = 0;
    size_t sendsB = 0;
    size_t recvB = 0;
    for (const IrEdge& e : a.edges) {
      if (e.chan != c) continue;
      if (e.sync == Sync::kSend) ++sendsA;
      if (e.sync == Sync::kReceive) ++recvA;
    }
    for (const IrEdge& e : b.edges) {
      if (e.chan != c) continue;
      if (e.sync == Sync::kSend) ++sendsB;
      if (e.sync == Sync::kReceive) ++recvB;
    }
    plan.fusions += sendsA * recvB + sendsB * recvA;
  }
  if (plan.fusions == 0) return plan;

  const size_t estEdges = nonPrivEdges == 0
                              ? plan.fusions
                              : a.edges.size() * b.locs.size() +
                                    b.edges.size() * a.locs.size() +
                                    plan.fusions;
  if (estEdges > kMaxProductEdges) return plan;
  plan.viable = true;
  return plan;
}

}  // namespace

bool passComposePairs(Ir& ir, const OptPins& pins, PassStats& st) {
  if (pins.deadlockGoal) return false;
  for (size_t i = 0; i < ir.procs.size(); ++i) {
    for (size_t j = i + 1; j < ir.procs.size(); ++j) {
      const PairPlan plan = planPair(ir, i, j);
      if (!plan.viable) continue;

      const IrProcess& a = ir.procs[i];
      const IrProcess& b = ir.procs[j];
      const size_t nb = b.locs.size();
      const auto prod = [&](LocId u, LocId v) {
        return static_cast<LocId>(static_cast<size_t>(u) * nb +
                                  static_cast<size_t>(v));
      };

      IrProcess out;
      out.name = a.name + "_" + b.name;
      out.origProcs = a.origProcs;
      out.origProcs.insert(out.origProcs.end(), b.origProcs.begin(),
                           b.origProcs.end());
      out.init = prod(a.init, b.init);
      for (const IrLocation& u : a.locs) {
        for (const IrLocation& v : b.locs) {
          IrLocation l;
          l.name = u.name + "_" + v.name;
          l.urgent = u.urgent || v.urgent;
          l.invariant = u.invariant;
          l.invariant.insert(l.invariant.end(), v.invariant.begin(),
                             v.invariant.end());
          out.locs.push_back(std::move(l));
        }
      }

      // Solo moves: every non-private edge of one member interleaves
      // with every location of the other. Edges on private channels
      // either fuse below or can never fire (their only possible
      // partner now lives in the same process) and are dropped.
      const auto isPriv = [&](const IrEdge& e) {
        return e.sync != Sync::kNone &&
               plan.privateChan[static_cast<size_t>(e.chan)] != 0;
      };
      size_t droppedPrivate = 0;
      for (const IrEdge& e : a.edges) {
        if (isPriv(e)) continue;
        for (LocId v = 0; v < static_cast<LocId>(nb); ++v) {
          IrEdge ne = e;
          ne.src = prod(e.src, v);
          ne.dst = prod(e.dst, v);
          out.edges.push_back(std::move(ne));
        }
      }
      for (const IrEdge& e : b.edges) {
        if (isPriv(e)) continue;
        for (LocId u = 0; u < static_cast<LocId>(a.locs.size()); ++u) {
          IrEdge ne = e;
          ne.src = prod(u, e.src);
          ne.dst = prod(u, e.dst);
          out.edges.push_back(std::move(ne));
        }
      }
      // Fused handshakes: guard and clock guard conjoined (both
      // evaluated against the pre-transition state, exactly like the
      // engine's binary pairing), effects sender-first (the engine's
      // and the validator's order).
      const auto fuse = [&](const IrEdge& snd, const IrEdge& rcv,
                            bool aSends) {
        IrEdge ne;
        ne.src = aSends ? prod(snd.src, rcv.src) : prod(rcv.src, snd.src);
        ne.dst = aSends ? prod(snd.dst, rcv.dst) : prod(rcv.dst, snd.dst);
        ne.clockGuard = snd.clockGuard;
        ne.clockGuard.insert(ne.clockGuard.end(), rcv.clockGuard.begin(),
                             rcv.clockGuard.end());
        if (snd.guard == kNoExpr) {
          ne.guard = rcv.guard;
        } else if (rcv.guard == kNoExpr) {
          ne.guard = snd.guard;
        } else {
          ne.guard = ir.pool.binary(Op::kAnd, snd.guard, rcv.guard);
        }
        ne.resets = snd.resets;
        ne.resets.insert(ne.resets.end(), rcv.resets.begin(),
                         rcv.resets.end());
        ne.assigns = snd.assigns;
        ne.assigns.insert(ne.assigns.end(), rcv.assigns.begin(),
                          rcv.assigns.end());
        const std::string& cn = ir.chanNames[static_cast<size_t>(snd.chan)];
        ne.label = (snd.label.empty() ? cn + "!" : snd.label) + "/" +
                   (rcv.label.empty() ? cn + "?" : rcv.label);
        ne.origin = snd.origin;
        ne.origin.insert(ne.origin.end(), rcv.origin.begin(),
                         rcv.origin.end());
        out.edges.push_back(std::move(ne));
      };
      for (const IrEdge& ea : a.edges) {
        if (!isPriv(ea)) continue;
        bool fused = false;
        for (const IrEdge& eb : b.edges) {
          if (eb.chan != ea.chan) continue;
          if (ea.sync == Sync::kSend && eb.sync == Sync::kReceive) {
            fuse(ea, eb, /*aSends=*/true);
            fused = true;
          } else if (ea.sync == Sync::kReceive && eb.sync == Sync::kSend) {
            fuse(eb, ea, /*aSends=*/false);
            fused = true;
          }
        }
        if (!fused) ++droppedPrivate;
      }
      for (const IrEdge& eb : b.edges) {
        if (!isPriv(eb)) continue;
        bool partnered = false;
        for (const IrEdge& ea : a.edges) {
          if (ea.chan == eb.chan && ea.sync != eb.sync && isPriv(ea)) {
            partnered = true;
            break;
          }
        }
        if (!partnered) ++droppedPrivate;
      }
      st.removedEdges += droppedPrivate;

      // Splice: product replaces member i, member j disappears.
      for (size_t op = 0; op < ir.procOf.size(); ++op) {
        if (ir.procOf[op] == static_cast<int32_t>(j)) {
          ir.procOf[op] = static_cast<int32_t>(i);
          std::fill(ir.locOf[op].begin(), ir.locOf[op].end(), -1);
        } else if (ir.procOf[op] > static_cast<int32_t>(j)) {
          --ir.procOf[op];
        }
        if (ir.procOf[op] == static_cast<int32_t>(i)) {
          // Component locations of the product are no longer
          // individually addressable.
          std::fill(ir.locOf[op].begin(), ir.locOf[op].end(), -1);
        }
      }
      ir.procs[i] = std::move(out);
      ir.procs.erase(ir.procs.begin() + static_cast<std::ptrdiff_t>(j));
      ++st.composedProcesses;
      // One fusion per round keeps the index bookkeeping simple; the
      // fixpoint loop supplies further rounds.
      return true;
    }
  }
  return false;
}

}  // namespace ta
