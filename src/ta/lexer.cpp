#include "ta/lexer.hpp"

#include <cctype>

#include "dbm/bound.hpp"

namespace ta {

const char* tokName(Tok kind) {
  switch (kind) {
    case Tok::kEnd: return "end of file";
    case Tok::kIdent: return "identifier";
    case Tok::kInt: return "integer";
    case Tok::kString: return "string";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kLBracket: return "'['";
    case Tok::kRBracket: return "']'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kSemi: return "';'";
    case Tok::kComma: return "','";
    case Tok::kDot: return "'.'";
    case Tok::kArrow: return "'->'";
    case Tok::kAssign: return "'='";
    case Tok::kLt: return "'<'";
    case Tok::kLe: return "'<='";
    case Tok::kGt: return "'>'";
    case Tok::kGe: return "'>='";
    case Tok::kEq: return "'=='";
    case Tok::kNe: return "'!='";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kStar: return "'*'";
    case Tok::kSlash: return "'/'";
    case Tok::kPercent: return "'%'";
    case Tok::kAnd: return "'&&'";
    case Tok::kOr: return "'||'";
    case Tok::kNot: return "'!'";
    case Tok::kBang: return "'!'";
    case Tok::kQuest: return "'?'";
    case Tok::kColon: return "':'";
  }
  return "token";
}

std::string describeToken(const Token& t) {
  switch (t.kind) {
    case Tok::kEnd: return "end of file";
    case Tok::kIdent: return "'" + t.text + "'";
    case Tok::kInt: return "'" + std::to_string(t.value) + "'";
    case Tok::kString: return "string \"" + t.text + "\"";
    default: return tokName(t.kind);
  }
}

Lexer::Lexer(const std::string& text, std::vector<Diagnostic>* diags)
    : text_(text), diags_(diags) {
  advance();
}

Span Lexer::here(int len) const {
  return {line_, static_cast<int>(pos_ - lineStart_) + 1, len};
}

void Lexer::report(DiagCode code, Span span, std::string message) {
  if (diags_ == nullptr || emitted_ >= kMaxLexDiags) return;
  ++emitted_;
  diags_->push_back(
      {Severity::kError, code, span, std::move(message), {}});
}

void Lexer::skipSpaceAndComments() {
  for (;;) {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      if (text_[pos_] == '\n') {
        ++line_;
        lineStart_ = pos_ + 1;
      }
      ++pos_;
    }
    if (pos_ + 1 < text_.size() && text_[pos_] == '/' &&
        text_[pos_ + 1] == '/') {
      while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      continue;
    }
    break;
  }
}

void Lexer::advance() {
  for (;;) {
    skipSpaceAndComments();
    cur_ = Token{};
    cur_.span = here(0);
    if (pos_ >= text_.size()) return;  // kEnd
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      cur_.kind = Tok::kIdent;
      cur_.text = text_.substr(start, pos_ - start);
      cur_.span.len = static_cast<int>(pos_ - start);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const size_t start = pos_;
      // Accumulate with an explicit overflow clamp: the old
      // std::stoll-based literal scan threw std::out_of_range straight
      // through parseModel on inputs like 99999999999999999999.
      int64_t v = 0;
      bool overflow = false;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        if (v > dbm::kMaxValue) {
          overflow = true;
        } else {
          v = v * 10 + (text_[pos_] - '0');
        }
        ++pos_;
      }
      cur_.kind = Tok::kInt;
      cur_.span.len = static_cast<int>(pos_ - start);
      if (overflow || v > dbm::kMaxValue) {
        report(DiagCode::kBadConstant, {cur_.span.line, cur_.span.col,
                                        cur_.span.len},
               "integer literal '" + text_.substr(start, pos_ - start) +
                   "' exceeds the representable bound range (max " +
                   std::to_string(dbm::kMaxValue) + ")");
        v = dbm::kMaxValue;
      }
      cur_.value = v;
      return;
    }
    if (c == '"') {
      const Span open = here(1);
      const size_t start = ++pos_;
      while (pos_ < text_.size() && text_[pos_] != '"' &&
             text_[pos_] != '\n') {
        ++pos_;
      }
      cur_.kind = Tok::kString;
      cur_.text = text_.substr(start, pos_ - start);
      cur_.span.len = static_cast<int>(pos_ - start) + 2;
      if (pos_ < text_.size() && text_[pos_] == '"') {
        ++pos_;  // closing quote
      } else {
        report(DiagCode::kUnterminatedString, open,
               "unterminated string literal");
      }
      return;
    }
    const auto two = [&](char a, char b, Tok k) {
      if (c == a && pos_ + 1 < text_.size() && text_[pos_ + 1] == b) {
        cur_.kind = k;
        cur_.span.len = 2;
        pos_ += 2;
        return true;
      }
      return false;
    };
    if (two('-', '>', Tok::kArrow) || two('<', '=', Tok::kLe) ||
        two('>', '=', Tok::kGe) || two('=', '=', Tok::kEq) ||
        two('!', '=', Tok::kNe) || two('&', '&', Tok::kAnd) ||
        two('|', '|', Tok::kOr)) {
      return;
    }
    cur_.span.len = 1;
    ++pos_;
    switch (c) {
      case '{': cur_.kind = Tok::kLBrace; return;
      case '}': cur_.kind = Tok::kRBrace; return;
      case '[': cur_.kind = Tok::kLBracket; return;
      case ']': cur_.kind = Tok::kRBracket; return;
      case '(': cur_.kind = Tok::kLParen; return;
      case ')': cur_.kind = Tok::kRParen; return;
      case ';': cur_.kind = Tok::kSemi; return;
      case ',': cur_.kind = Tok::kComma; return;
      case '.': cur_.kind = Tok::kDot; return;
      case '=': cur_.kind = Tok::kAssign; return;
      case '<': cur_.kind = Tok::kLt; return;
      case '>': cur_.kind = Tok::kGt; return;
      case '+': cur_.kind = Tok::kPlus; return;
      case '-': cur_.kind = Tok::kMinus; return;
      case '*': cur_.kind = Tok::kStar; return;
      case '/': cur_.kind = Tok::kSlash; return;
      case '%': cur_.kind = Tok::kPercent; return;
      case '!': cur_.kind = Tok::kBang; return;
      case '?': cur_.kind = Tok::kQuest; return;
      case ':': cur_.kind = Tok::kColon; return;
      default: break;
    }
    // Invalid character(s): collapse the whole run into one diagnostic
    // and keep lexing — the parser never sees them, so one stray byte
    // cannot cascade into a wall of unrelated syntax errors.
    const Span bad = {cur_.span.line, cur_.span.col, 1};
    int run = 1;
    const auto valid = [](char ch) {
      return std::isalnum(static_cast<unsigned char>(ch)) || ch == '_' ||
             std::isspace(static_cast<unsigned char>(ch)) ||
             std::string_view("{}[]();,.=<>+-*/%!?:\"&|").find(ch) !=
                 std::string_view::npos;
    };
    while (pos_ < text_.size() && !valid(text_[pos_])) {
      ++pos_;
      ++run;
    }
    report(DiagCode::kInvalidCharacter, {bad.line, bad.col, run},
           run == 1 ? std::string("invalid character '") + c + "'"
                    : "invalid characters starting with '" + std::string(1, c) +
                          "'");
  }
}

}  // namespace ta
