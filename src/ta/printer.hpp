// Pretty-printer from a System (plus its queries) back to `.gta` text.
//
// The output re-parses: `parseModelEx(printModel(sys, qs))` succeeds for
// any model whose names are plain identifiers (everything the parser can
// produce, and the hand-built example plants). Printing is canonical —
// a print → parse → print round trip is a fixpoint — which is what the
// round-trip tests check structural equality with.
//
// Constructs without surface syntax are lowered: min/max print as the
// equivalent `?:`, negative constants as unary minus.
#pragma once

#include <string>
#include <vector>

#include "ta/parser.hpp"

namespace ta {

/// Render one clock atom (`x <= 5`, `x - y < 2`, `x >= 3`) using the
/// system's clock names.
[[nodiscard]] std::string printClockAtom(const System& sys,
                                         const ClockConstraint& cc);

/// Render an expression in re-parseable form (fully parenthesized).
[[nodiscard]] std::string printExpr(const System& sys, ExprRef e);

/// Render the whole model as `.gta` source.
[[nodiscard]] std::string printModel(const System& sys,
                                     const std::vector<ParsedQuery>& queries);

}  // namespace ta
