#include "ta/ir.hpp"

#include <chrono>
#include <set>
#include <string>
#include <utility>

namespace ta {

namespace {

/// Deep-copy an expression from one pool into another (arenas are
/// append-only, so refs into `dst` stay valid while it grows).
ExprRef copyExpr(const ExprPool& src, ExprRef e, ExprPool& dst) {
  if (e == kNoExpr) return kNoExpr;
  const ExprNode n = src.node(e);
  switch (n.op) {
    case Op::kConst:
      return dst.constant(n.a);
    case Op::kVar: {
      if (n.b == kNoExpr) return dst.var(n.a);
      const ExprRef idx = copyExpr(src, n.b, dst);
      return dst.arrayCell(n.a, idx, n.c);
    }
    case Op::kNeg:
    case Op::kNot:
      return dst.unary(n.op, copyExpr(src, n.a, dst));
    case Op::kIte: {
      const ExprRef a = copyExpr(src, n.a, dst);
      const ExprRef b = copyExpr(src, n.b, dst);
      const ExprRef c = copyExpr(src, n.c, dst);
      return dst.ite(a, b, c);
    }
    default: {
      const ExprRef a = copyExpr(src, n.a, dst);
      const ExprRef b = copyExpr(src, n.b, dst);
      return dst.binary(n.op, a, b);
    }
  }
}

/// Composition concatenates names with '_', which can collide with an
/// existing identifier; the printer round-trip needs uniqueness.
std::string uniqueName(std::string base, std::set<std::string>& used) {
  if (base.empty()) base = "s";
  std::string name = base;
  int k = 2;
  while (!used.insert(name).second) {
    name = base + "_" + std::to_string(k++);
  }
  return name;
}

}  // namespace

Ir Ir::lower(const System& sys, const OptPins& pins) {
  Ir ir;
  ir.pool = sys.pool();
  ir.numClocks = sys.numClocks();
  for (ClockId c = 1; c <= static_cast<ClockId>(ir.numClocks); ++c) {
    ir.clockNames.push_back(sys.clockName(c));
  }
  ir.varInit = sys.initialVars();
  ir.varNames = sys.varNames();
  ir.arrays = sys.arrays();
  for (ChanId c = 0; c < static_cast<ChanId>(sys.numChannels()); ++c) {
    ir.chanNames.push_back(sys.channelName(c));
    ir.chanKinds.push_back(sys.channelKind(c));
  }

  for (ProcId p = 0; p < static_cast<ProcId>(sys.numAutomata()); ++p) {
    const Automaton& a = sys.automaton(p);
    IrProcess ip;
    ip.name = a.name();
    ip.init = a.initial();
    ip.origProcs = {p};
    for (size_t l = 0; l < a.numLocations(); ++l) {
      const Location& loc = a.location(static_cast<LocId>(l));
      ip.locs.push_back(
          {loc.name, loc.invariant, loc.urgent, loc.committed, false});
    }
    for (size_t ei = 0; ei < a.edges().size(); ++ei) {
      const Edge& e = a.edges()[ei];
      IrEdge ie;
      ie.src = e.src;
      ie.dst = e.dst;
      ie.clockGuard = e.clockGuard;
      ie.guard = e.guard;
      ie.chan = e.chan;
      ie.sync = e.sync;
      ie.resets = e.resets;
      ie.assigns = e.assigns;
      ie.label = e.label;
      ie.origin = {{p, static_cast<int32_t>(ei)}};
      ip.edges.push_back(std::move(ie));
    }
    ir.procs.push_back(std::move(ip));
  }

  ir.clockRep.resize(ir.numClocks + 1);
  for (size_t c = 0; c < ir.clockRep.size(); ++c) {
    ir.clockRep[c] = static_cast<ClockId>(c);
  }
  ir.procOf.resize(ir.procs.size());
  ir.locOf.resize(ir.procs.size());
  for (size_t p = 0; p < ir.procs.size(); ++p) {
    ir.procOf[p] = static_cast<int32_t>(p);
    ir.locOf[p].resize(ir.procs[p].locs.size());
    for (size_t l = 0; l < ir.locOf[p].size(); ++l) {
      ir.locOf[p][l] = static_cast<LocId>(l);
    }
  }
  ir.elidedSeen.assign(ir.varInit.size(), 0);

  for (const auto& [p, l] : pins.locations) {
    ir.procs[static_cast<size_t>(p)].locs[static_cast<size_t>(l)].pinned =
        true;
    ir.procs[static_cast<size_t>(p)].pinned = true;
  }
  for (const ProcId p : pins.processes) {
    ir.procs[static_cast<size_t>(p)].pinned = true;
  }
  ir.source = &sys;
  return ir;
}

namespace {

/// Variables with no surviving write hold their initial value forever —
/// the substitution `mapExpr` applies to goal predicates. Dynamic-index
/// writes taint the whole cell range, like the lint usage collector.
void constVarsOf(const Ir& ir, std::vector<uint8_t>* isConst,
                 std::vector<int32_t>* constVal) {
  std::vector<uint8_t> written(ir.varInit.size(), 0);
  for (const IrProcess& p : ir.procs) {
    for (const IrEdge& e : p.edges) {
      for (const Assign& as : e.assigns) {
        if (as.index == kNoExpr) {
          written[static_cast<size_t>(as.base)] = 1;
          continue;
        }
        const ExprNode& idx = ir.pool.node(as.index);
        if (idx.op == Op::kConst) {
          if (idx.a >= 0 && idx.a < as.arraySize) {
            written[static_cast<size_t>(as.base + idx.a)] = 1;
          }
        } else {
          for (int32_t k = 0; k < as.arraySize; ++k) {
            written[static_cast<size_t>(as.base + k)] = 1;
          }
        }
      }
    }
  }
  isConst->resize(written.size());
  for (size_t v = 0; v < written.size(); ++v) {
    (*isConst)[v] = written[v] == 0;
  }
  *constVal = ir.varInit;
}

void emitSystem(const Ir& ir, System& sys, std::vector<ClockId>& clockMap) {
  // Clocks: keep the representatives, in original order under their
  // original names (merged names simply disappear).
  std::vector<ClockId> newId(ir.numClocks + 1, 0);
  std::vector<uint8_t> live(ir.numClocks + 1, 0);
  for (ClockId c = 1; c <= static_cast<ClockId>(ir.numClocks); ++c) {
    live[static_cast<size_t>(ir.clockRep[static_cast<size_t>(c)])] = 1;
  }
  for (ClockId c = 1; c <= static_cast<ClockId>(ir.numClocks); ++c) {
    if (live[static_cast<size_t>(c)] != 0) {
      newId[static_cast<size_t>(c)] =
          sys.addClock(ir.clockNames[static_cast<size_t>(c - 1)]);
    }
  }
  clockMap.assign(ir.numClocks + 1, 0);
  for (ClockId c = 1; c <= static_cast<ClockId>(ir.numClocks); ++c) {
    clockMap[static_cast<size_t>(c)] =
        newId[static_cast<size_t>(ir.clockRep[static_cast<size_t>(c)])];
  }
  const auto mapCk = [&](ClockId c) {
    return c == 0 ? 0 : clockMap[static_cast<size_t>(c)];
  };
  const auto mapCc = [&](const ClockConstraint& cc) {
    return ClockConstraint{mapCk(cc.i), mapCk(cc.j), cc.bound};
  };

  // Variables: reproduce the id layout exactly (expressions refer to
  // cells by flat id) — arrays via addArray, everything else addVar.
  std::vector<int32_t> sizeAtBase(ir.varInit.size(), 0);
  for (const auto& [base, size] : ir.arrays) {
    sizeAtBase[static_cast<size_t>(base)] = size;
  }
  for (VarId v = 0; v < static_cast<VarId>(ir.varInit.size());) {
    const int32_t size = sizeAtBase[static_cast<size_t>(v)];
    if (size > 0) {
      std::string name = ir.varNames[static_cast<size_t>(v)];
      if (const size_t b = name.find('['); b != std::string::npos) {
        name.resize(b);
      }
      sys.addArray(name, size, 0);
      for (int32_t k = 0; k < size; ++k) {
        sys.setVarInit(v + k, ir.varInit[static_cast<size_t>(v + k)]);
      }
      v += size;
    } else {
      sys.addVar(ir.varNames[static_cast<size_t>(v)],
                 ir.varInit[static_cast<size_t>(v)]);
      ++v;
    }
  }

  for (size_t c = 0; c < ir.chanNames.size(); ++c) {
    sys.addChannel(ir.chanNames[c], ir.chanKinds[c]);
  }

  std::set<std::string> procNames;
  for (const IrProcess& p : ir.procs) {
    const ProcId np = sys.addAutomaton(uniqueName(p.name, procNames));
    Automaton& a = sys.automaton(np);
    std::set<std::string> locNames;
    for (const IrLocation& loc : p.locs) {
      const LocId l =
          a.addLocation(uniqueName(loc.name, locNames), loc.urgent,
                        loc.committed);
      std::vector<ClockConstraint> inv;
      inv.reserve(loc.invariant.size());
      for (const ClockConstraint& cc : loc.invariant) inv.push_back(mapCc(cc));
      a.setInvariant(l, std::move(inv));
    }
    a.setInitial(p.init);
    for (const IrEdge& e : p.edges) {
      EdgeBuilder eb = sys.edge(np, e.src, e.dst);
      for (const ClockConstraint& cc : e.clockGuard) eb.when(mapCc(cc));
      if (e.guard != kNoExpr) {
        eb.guard(copyExpr(ir.pool, e.guard, sys.pool()));
      }
      if (e.sync == Sync::kSend) eb.send(e.chan);
      if (e.sync == Sync::kReceive) eb.receive(e.chan);
      for (const ClockReset& r : e.resets) eb.reset(mapCk(r.clock), r.value);
      for (const Assign& as : e.assigns) {
        const ExprRef rhs = copyExpr(ir.pool, as.rhs, sys.pool());
        if (as.index == kNoExpr) {
          eb.assign(as.base, Ex(sys.pool(), rhs));
        } else {
          const ExprRef idx = copyExpr(ir.pool, as.index, sys.pool());
          eb.assignCell(as.base, Ex(sys.pool(), idx), as.arraySize,
                        Ex(sys.pool(), rhs));
        }
      }
      if (!e.label.empty()) eb.label(e.label);
    }
  }
  sys.finalize();
}

}  // namespace

ClockConstraint OptimizedModel::mapConstraint(const ClockConstraint& cc) const {
  ClockConstraint r{mapClock(cc.i), mapClock(cc.j), cc.bound};
  if (r.i == r.j) {
    // Both clocks were unified: the constraint degenerated to x - x,
    // which is satisfiable here (unification refuses to merge clocks a
    // pinned constraint would separate) — i.e. trivially true.
    return {0, 0, dbm::kZeroBound};
  }
  return r;
}

ExprRef OptimizedModel::mapExpr(const ExprPool& srcPool, ExprRef e) {
  if (e == kNoExpr) return kNoExpr;
  const ExprRef copied = copyExpr(srcPool, e, sys_.pool());
  size_t applied = 0;
  return foldExpr(sys_.pool(), copied, varIsConst_, varConstVal_, &applied);
}

OptimizedModel optimizeModel(const System& sys, const OptPins& pins,
                             const PassConfig& cfg) {
  OptimizedModel out;
  const bool anyEnabled = cfg.constFold || cfg.removeDead ||
                          cfg.simplifyGuards || cfg.deadStores ||
                          cfg.unifyClocks || cfg.compose;
  if (!anyEnabled) return out;

  const auto t0 = std::chrono::steady_clock::now();
  Ir ir = Ir::lower(sys, pins);
  PassStats st;
  for (int round = 0; round < cfg.maxIterations; ++round) {
    ++st.iterations;
    bool changed = false;
    if (cfg.constFold) changed |= passConstFold(ir, st);
    if (cfg.removeDead) {
      changed |= passRemoveNeverEnabledEdges(ir, st);
      changed |= passRemoveDeadLocations(ir, st);
    }
    if (cfg.simplifyGuards) changed |= passSimplifyGuards(ir, st);
    if (cfg.deadStores) changed |= passDropDeadStores(ir, pins, st);
    if (cfg.unifyClocks) changed |= passUnifyClocks(ir, pins, st);
    if (cfg.compose) changed |= passComposePairs(ir, pins, st);
    if (!changed) break;
  }

  if (st.any()) {
    out.changed_ = true;
    emitSystem(ir, out.sys_, out.clockMap_);
    out.procMap_.assign(ir.procOf.begin(), ir.procOf.end());
    out.locMap_ = ir.locOf;
    out.origins_.resize(ir.procs.size());
    for (size_t p = 0; p < ir.procs.size(); ++p) {
      out.origins_[p].reserve(ir.procs[p].edges.size());
      for (const IrEdge& e : ir.procs[p].edges) {
        out.origins_[p].push_back(e.origin);
      }
    }
    constVarsOf(ir, &out.varIsConst_, &out.varConstVal_);
  }
  st.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count();
  out.stats_ = st;
  return out;
}

}  // namespace ta
