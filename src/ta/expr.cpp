#include "ta/expr.hpp"

#include <algorithm>
#include <sstream>

namespace ta {

namespace {

struct Evaluator {
  const std::vector<ExprNode>& nodes;
  std::span<const int32_t> vars;
  bool ok = true;

  int64_t run(ExprRef e) {
    if (e == kNoExpr) return 1;
    const ExprNode& n = nodes[static_cast<size_t>(e)];
    switch (n.op) {
      case Op::kConst:
        return n.a;
      case Op::kVar: {
        int64_t idx = 0;
        if (n.b != kNoExpr) {
          idx = run(n.b);
          if (idx < 0 || idx >= n.c) {
            assert(false && "array index out of bounds");
            ok = false;
            return 0;
          }
        }
        return vars[static_cast<size_t>(n.a + idx)];
      }
      case Op::kAdd: return run(n.a) + run(n.b);
      case Op::kSub: return run(n.a) - run(n.b);
      case Op::kMul: return run(n.a) * run(n.b);
      case Op::kDiv: {
        const int64_t d = run(n.b);
        if (d == 0) {
          assert(false && "division by zero");
          ok = false;
          return 0;
        }
        return run(n.a) / d;
      }
      case Op::kMod: {
        const int64_t d = run(n.b);
        if (d == 0) {
          assert(false && "modulo by zero");
          ok = false;
          return 0;
        }
        return run(n.a) % d;
      }
      case Op::kNeg: return -run(n.a);
      case Op::kLt: return run(n.a) < run(n.b);
      case Op::kLe: return run(n.a) <= run(n.b);
      case Op::kEq: return run(n.a) == run(n.b);
      case Op::kNe: return run(n.a) != run(n.b);
      case Op::kGe: return run(n.a) >= run(n.b);
      case Op::kGt: return run(n.a) > run(n.b);
      case Op::kAnd: return run(n.a) != 0 && run(n.b) != 0;
      case Op::kOr: return run(n.a) != 0 || run(n.b) != 0;
      case Op::kNot: return run(n.a) == 0;
      case Op::kIte: return run(n.a) != 0 ? run(n.b) : run(n.c);
      case Op::kMin: return std::min(run(n.a), run(n.b));
      case Op::kMax: return std::max(run(n.a), run(n.b));
    }
    return 0;
  }
};

const char* opSymbol(Op op) {
  switch (op) {
    case Op::kAdd: return "+";
    case Op::kSub: return "-";
    case Op::kMul: return "*";
    case Op::kDiv: return "/";
    case Op::kMod: return "%";
    case Op::kLt: return "<";
    case Op::kLe: return "<=";
    case Op::kEq: return "==";
    case Op::kNe: return "!=";
    case Op::kGe: return ">=";
    case Op::kGt: return ">";
    case Op::kAnd: return "&&";
    case Op::kOr: return "||";
    default: return "?";
  }
}

struct Printer {
  const std::vector<ExprNode>& nodes;
  std::span<const std::string> names;

  std::string run(ExprRef e) const {
    if (e == kNoExpr) return "true";
    const ExprNode& n = nodes[static_cast<size_t>(e)];
    switch (n.op) {
      case Op::kConst:
        return std::to_string(n.a);
      case Op::kVar: {
        std::string base = static_cast<size_t>(n.a) < names.size()
                               ? names[static_cast<size_t>(n.a)]
                               : "v" + std::to_string(n.a);
        if (n.b != kNoExpr) base += "[" + run(n.b) + "]";
        return base;
      }
      case Op::kNeg: return "-(" + run(n.a) + ")";
      case Op::kNot: return "!(" + run(n.a) + ")";
      case Op::kIte:
        return "(" + run(n.a) + " ? " + run(n.b) + " : " + run(n.c) + ")";
      case Op::kMin:
        return "min(" + run(n.a) + ", " + run(n.b) + ")";
      case Op::kMax:
        return "max(" + run(n.a) + ", " + run(n.b) + ")";
      default:
        return "(" + run(n.a) + " " + opSymbol(n.op) + " " + run(n.b) + ")";
    }
  }
};

}  // namespace

int64_t ExprPool::eval(ExprRef e, std::span<const int32_t> vars,
                       bool* ok) const {
  Evaluator ev{nodes_, vars};
  const int64_t result = ev.run(e);
  if (ok != nullptr) *ok = ev.ok;
  return result;
}

std::string ExprPool::toString(ExprRef e,
                               std::span<const std::string> varNames) const {
  return Printer{nodes_, varNames}.run(e);
}

}  // namespace ta
