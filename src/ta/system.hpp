// A network of timed automata plus its symbol tables — the input to the
// reachability engine.
//
// Construction happens through the builder methods (addClock / addVar /
// addChannel / addAutomaton / EdgeBuilder); `finalize()` then computes
// the derived indices the engine needs: per-location outgoing edge
// lists, per-clock maximal bounds for extrapolation, and per-location
// active-clock sets for the Daws–Tripakis inactive-clock reduction.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include "ta/model.hpp"

namespace ta {

class System;

/// Fluent helper for populating an edge in place.
class EdgeBuilder {
 public:
  EdgeBuilder(System& sys, Edge& edge) : sys_(&sys), edge_(&edge) {}

  EdgeBuilder& when(ClockConstraint cc) {
    edge_->clockGuard.push_back(cc);
    return *this;
  }
  /// Conjoins with any guard already present.
  EdgeBuilder& guard(Ex e);
  EdgeBuilder& guard(ExprRef e);
  EdgeBuilder& send(ChanId c);
  EdgeBuilder& receive(ChanId c);
  EdgeBuilder& reset(ClockId x, dbm::value_t v = 0) {
    edge_->resets.push_back({x, v});
    return *this;
  }
  EdgeBuilder& assign(VarId v, Ex rhs) {
    edge_->assigns.push_back({v, kNoExpr, 1, rhs.ref()});
    return *this;
  }
  EdgeBuilder& assign(VarId v, int32_t rhs);
  EdgeBuilder& assignCell(VarId base, Ex index, int32_t size, Ex rhs) {
    edge_->assigns.push_back({base, index.ref(), size, rhs.ref()});
    return *this;
  }
  EdgeBuilder& assignCellConst(VarId base, int32_t index, int32_t size,
                               int32_t rhs);
  EdgeBuilder& label(std::string s) {
    edge_->label = std::move(s);
    return *this;
  }

 private:
  System* sys_;
  Edge* edge_;
};

class Automaton {
 public:
  explicit Automaton(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  LocId addLocation(std::string name, bool urgent = false,
                    bool committed = false) {
    locs_.push_back({std::move(name), {}, urgent, committed});
    return static_cast<LocId>(locs_.size() - 1);
  }

  void setInvariant(LocId l, std::vector<ClockConstraint> inv) {
    locs_[static_cast<size_t>(l)].invariant = std::move(inv);
  }
  void addInvariant(LocId l, ClockConstraint cc) {
    locs_[static_cast<size_t>(l)].invariant.push_back(cc);
  }
  void setInitial(LocId l) { init_ = l; }

  [[nodiscard]] LocId initial() const noexcept { return init_; }
  [[nodiscard]] size_t numLocations() const noexcept { return locs_.size(); }
  /// Location id by name, -1 if absent.
  [[nodiscard]] LocId findLocation(const std::string& name) const {
    for (size_t i = 0; i < locs_.size(); ++i) {
      if (locs_[i].name == name) return static_cast<LocId>(i);
    }
    return -1;
  }
  [[nodiscard]] const Location& location(LocId l) const {
    return locs_[static_cast<size_t>(l)];
  }
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept {
    return edges_;
  }
  [[nodiscard]] const std::vector<int32_t>& outgoing(LocId l) const {
    return outgoing_[static_cast<size_t>(l)];
  }
  /// Statically computed clocks that matter at location l (this
  /// automaton's contribution).
  [[nodiscard]] const std::vector<ClockId>& activeClocks(LocId l) const {
    return active_[static_cast<size_t>(l)];
  }

 private:
  friend class System;

  std::string name_;
  std::vector<Location> locs_;
  std::vector<Edge> edges_;
  LocId init_ = 0;
  // Derived by System::finalize():
  std::vector<std::vector<int32_t>> outgoing_;  // per-location edge indices
  std::vector<std::vector<ClockId>> active_;    // per-location active clocks
};

class System {
 public:
  // -- Declarations -----------------------------------------------------

  ClockId addClock(std::string name) {
    clockNames_.push_back(std::move(name));
    return static_cast<ClockId>(clockNames_.size() - 1 + 1);  // 1-based
  }

  VarId addVar(std::string name, int32_t init = 0) {
    varNames_.push_back(std::move(name));
    varInit_.push_back(init);
    return static_cast<VarId>(varNames_.size() - 1);
  }

  /// Override the initial value of a variable (or one array cell).
  void setVarInit(VarId v, int32_t init) {
    varInit_[static_cast<size_t>(v)] = init;
  }

  /// Override the initial value of a clock (default 0). Nonzero values
  /// lift a mid-run concrete state into the model: the initial zone
  /// becomes the delayed point valuation instead of the origin. The
  /// pre-exploration optimizer is bypassed for such systems (its
  /// clock-unification and dead-location reasoning assume the zero
  /// origin), and the initial state may violate an invariant — engines
  /// then report the goal unreachable instead of asserting.
  void setClockInit(ClockId c, dbm::value_t v) {
    assert(c >= 1 && static_cast<size_t>(c) <= clockNames_.size());
    if (clockInit_.empty() && v == 0) return;
    if (clockInit_.empty()) clockInit_.resize(clockNames_.size() + 1, 0);
    if (static_cast<size_t>(c) >= clockInit_.size()) {
      clockInit_.resize(clockNames_.size() + 1, 0);
    }
    clockInit_[static_cast<size_t>(c)] = v;
  }

  /// Adds `size` consecutive cells named name[0..size-1]; returns the
  /// base id of cell 0.
  VarId addArray(const std::string& name, int32_t size, int32_t init = 0) {
    assert(size > 0);
    const VarId base = static_cast<VarId>(varNames_.size());
    for (int32_t k = 0; k < size; ++k) {
      varNames_.push_back(name + "[" + std::to_string(k) + "]");
      varInit_.push_back(init);
    }
    arraySizes_.push_back({base, size});
    return base;
  }

  ChanId addChannel(std::string name, ChanKind kind = ChanKind::kBinary) {
    chanNames_.push_back(std::move(name));
    chanKinds_.push_back(kind);
    return static_cast<ChanId>(chanNames_.size() - 1);
  }

  ProcId addAutomaton(std::string name) {
    automata_.push_back(std::make_unique<Automaton>(std::move(name)));
    return static_cast<ProcId>(automata_.size() - 1);
  }

  [[nodiscard]] Automaton& automaton(ProcId p) { return *automata_[static_cast<size_t>(p)]; }
  [[nodiscard]] const Automaton& automaton(ProcId p) const {
    return *automata_[static_cast<size_t>(p)];
  }

  EdgeBuilder edge(ProcId p, LocId from, LocId to) {
    Automaton& a = automaton(p);
    Edge e;
    e.src = from;
    e.dst = to;
    a.edges_.push_back(std::move(e));
    return EdgeBuilder(*this, a.edges_.back());
  }

  // -- Expressions --------------------------------------------------------

  [[nodiscard]] ExprPool& pool() noexcept { return pool_; }
  [[nodiscard]] const ExprPool& pool() const noexcept { return pool_; }

  [[nodiscard]] Ex lit(int32_t v) { return {pool_, pool_.constant(v)}; }
  [[nodiscard]] Ex rd(VarId v) { return {pool_, pool_.var(v)}; }
  [[nodiscard]] Ex rdCell(VarId base, int32_t index, int32_t size) {
    assert(index >= 0 && index < size);
    (void)size;
    return {pool_, pool_.var(base + index)};
  }
  [[nodiscard]] Ex rdCell(VarId base, Ex index, int32_t size) {
    return {pool_, pool_.arrayCell(base, index.ref(), size)};
  }

  // -- Introspection ------------------------------------------------------

  [[nodiscard]] size_t numAutomata() const noexcept { return automata_.size(); }
  [[nodiscard]] uint32_t numClocks() const noexcept {
    return static_cast<uint32_t>(clockNames_.size());
  }
  /// DBM dimension: model clocks + the reference clock.
  [[nodiscard]] uint32_t dbmDimension() const noexcept {
    return numClocks() + 1;
  }
  [[nodiscard]] size_t numVars() const noexcept { return varNames_.size(); }
  [[nodiscard]] size_t numChannels() const noexcept { return chanNames_.size(); }

  [[nodiscard]] const std::vector<int32_t>& initialVars() const noexcept {
    return varInit_;
  }
  /// Initial clock valuation indexed by ClockId (slot 0 is the
  /// reference clock). Empty when every clock starts at 0.
  [[nodiscard]] const std::vector<dbm::value_t>& initialClocks()
      const noexcept {
    return clockInit_;
  }
  /// Initial value of one clock (0 unless overridden by setClockInit).
  [[nodiscard]] dbm::value_t initialClock(ClockId c) const {
    if (static_cast<size_t>(c) >= clockInit_.size()) return 0;
    return clockInit_[static_cast<size_t>(c)];
  }
  [[nodiscard]] bool hasNonzeroClockInit() const noexcept {
    for (const dbm::value_t v : clockInit_) {
      if (v != 0) return true;
    }
    return false;
  }
  [[nodiscard]] const std::string& clockName(ClockId c) const {
    return clockNames_[static_cast<size_t>(c - 1)];
  }
  [[nodiscard]] const std::string& varName(VarId v) const {
    return varNames_[static_cast<size_t>(v)];
  }
  [[nodiscard]] const std::vector<std::string>& varNames() const noexcept {
    return varNames_;
  }
  /// Declared arrays as (base cell id, size) pairs — cells occupy the
  /// consecutive VarId range [base, base + size). Used by the lint
  /// passes (usage grouping) and the .gta printer (declarations).
  [[nodiscard]] const std::vector<std::pair<VarId, int32_t>>& arrays()
      const noexcept {
    return arraySizes_;
  }
  [[nodiscard]] const std::string& channelName(ChanId c) const {
    return chanNames_[static_cast<size_t>(c)];
  }
  [[nodiscard]] ChanKind channelKind(ChanId c) const {
    return chanKinds_[static_cast<size_t>(c)];
  }

  /// Per-clock maximal constants (index 0 = reference clock, always 0);
  /// computed by finalize(). -1 means the clock is never compared.
  [[nodiscard]] const std::vector<dbm::value_t>& maxBounds() const noexcept {
    return maxBounds_;
  }

  /// All receive edges of a channel as (process, edge-index) pairs —
  /// lets the engine pair senders with receivers without scanning every
  /// process. Computed by finalize().
  [[nodiscard]] const std::vector<std::pair<ProcId, int32_t>>& receivers(
      ChanId c) const {
    return receiversByChan_[static_cast<size_t>(c)];
  }

  /// Compute derived tables. Must be called once after construction and
  /// before handing the system to the engine.
  void finalize();

  [[nodiscard]] bool finalized() const noexcept { return finalized_; }

  /// Pretty-print the whole network (locations, invariants, edges) —
  /// this is what examples/inspect_model shows for Figures 3/4/7/8/9.
  [[nodiscard]] std::string dump() const;

  /// Render a clock constraint like "x<=5" or "x-y<3".
  [[nodiscard]] std::string ccToString(const ClockConstraint& cc) const;

 private:
  friend class EdgeBuilder;

  ExprPool pool_;
  std::vector<std::string> clockNames_;
  std::vector<dbm::value_t> clockInit_;  ///< by ClockId; empty = all zero
  std::vector<std::string> varNames_;
  std::vector<int32_t> varInit_;
  std::vector<std::pair<VarId, int32_t>> arraySizes_;
  std::vector<std::string> chanNames_;
  std::vector<ChanKind> chanKinds_;
  std::vector<std::unique_ptr<Automaton>> automata_;
  std::vector<dbm::value_t> maxBounds_;
  std::vector<std::vector<std::pair<ProcId, int32_t>>> receiversByChan_;
  bool finalized_ = false;
};

}  // namespace ta
