#include "ta/printer.hpp"

#include <string>

namespace ta {

namespace {

/// "pos[0]" -> "pos": array cells carry their index in the symbol
/// table; the surface syntax uses the bare array name.
std::string baseName(const std::string& cellName) {
  const size_t b = cellName.find('[');
  return b == std::string::npos ? cellName : cellName.substr(0, b);
}

class ExprPrinter {
 public:
  ExprPrinter(const System& sys) : sys_(sys) {}

  std::string print(ExprRef e) const {
    const ExprNode& n = sys_.pool().node(e);
    switch (n.op) {
      case Op::kConst:
        return n.a < 0 ? "(-" + std::to_string(-static_cast<int64_t>(n.a)) +
                             ")"
                       : std::to_string(n.a);
      case Op::kVar:
        if (n.b == kNoExpr) return sys_.varName(n.a);
        return baseName(sys_.varName(n.a)) + "[" + print(n.b) + "]";
      case Op::kAdd: return bin(n, " + ");
      case Op::kSub: return bin(n, " - ");
      case Op::kMul: return bin(n, " * ");
      case Op::kDiv: return bin(n, " / ");
      case Op::kMod: return bin(n, " % ");
      case Op::kNeg: return "(-" + print(n.a) + ")";
      case Op::kLt: return bin(n, " < ");
      case Op::kLe: return bin(n, " <= ");
      case Op::kEq: return bin(n, " == ");
      case Op::kNe: return bin(n, " != ");
      case Op::kGe: return bin(n, " >= ");
      case Op::kGt: return bin(n, " > ");
      case Op::kAnd: return bin(n, " && ");
      case Op::kOr: return bin(n, " || ");
      case Op::kNot: return "(!" + print(n.a) + ")";
      case Op::kIte:
        return "(" + print(n.a) + " ? " + print(n.b) + " : " + print(n.c) +
               ")";
      // No surface syntax; lower to the equivalent conditional.
      case Op::kMin:
        return "((" + print(n.a) + " < " + print(n.b) + ") ? " + print(n.a) +
               " : " + print(n.b) + ")";
      case Op::kMax:
        return "((" + print(n.a) + " > " + print(n.b) + ") ? " + print(n.a) +
               " : " + print(n.b) + ")";
    }
    return "0";
  }

 private:
  std::string bin(const ExprNode& n, const char* op) const {
    return "(" + print(n.a) + op + print(n.b) + ")";
  }

  const System& sys_;
};

}  // namespace

std::string printClockAtom(const System& sys, const ClockConstraint& cc) {
  const dbm::value_t v = dbm::boundValue(cc.bound);
  const bool strict = dbm::isStrict(cc.bound);
  if (cc.i == 0) {
    // 0 - x <bound> v  ==  x >(=) -v
    return sys.clockName(cc.j) + (strict ? " > " : " >= ") +
           std::to_string(-static_cast<int64_t>(v));
  }
  std::string lhs = sys.clockName(cc.i);
  if (cc.j != 0) lhs += " - " + sys.clockName(cc.j);
  return lhs + (strict ? " < " : " <= ") + std::to_string(v);
}

std::string printExpr(const System& sys, ExprRef e) {
  return ExprPrinter(sys).print(e);
}

std::string printModel(const System& sys,
                       const std::vector<ParsedQuery>& queries) {
  std::string out;
  const ExprPrinter ep(sys);

  for (ClockId c = 1; c <= static_cast<ClockId>(sys.numClocks()); ++c) {
    out += "clock " + sys.clockName(c) + ";\n";
  }

  // Scalars and arrays interleave in VarId order; walk the array table
  // alongside the flat cell list.
  const auto& arrays = sys.arrays();
  size_t nextArray = 0;
  for (VarId v = 0; v < static_cast<VarId>(sys.numVars());) {
    if (nextArray < arrays.size() && arrays[nextArray].first == v) {
      const int32_t size = arrays[nextArray].second;
      out += "int " + baseName(sys.varName(v)) + "[" +
             std::to_string(size) + "]";
      const int32_t init = sys.initialVars()[static_cast<size_t>(v)];
      if (init != 0) out += " = " + std::to_string(init);
      out += ";\n";
      v += size;
      ++nextArray;
      continue;
    }
    out += "int " + sys.varName(v);
    const int32_t init = sys.initialVars()[static_cast<size_t>(v)];
    if (init != 0) out += " = " + std::to_string(init);
    out += ";\n";
    ++v;
  }

  for (ChanId c = 0; c < static_cast<ChanId>(sys.numChannels()); ++c) {
    if (sys.channelKind(c) == ChanKind::kBroadcast) out += "broadcast ";
    out += "chan " + sys.channelName(c) + ";\n";
  }

  for (ProcId p = 0; p < static_cast<ProcId>(sys.numAutomata()); ++p) {
    const Automaton& a = sys.automaton(p);
    out += "\nprocess " + a.name() + " {\n";
    for (LocId l = 0; l < static_cast<LocId>(a.numLocations()); ++l) {
      const Location& loc = a.location(l);
      out += "  ";
      if (loc.urgent) out += "urgent ";
      if (loc.committed) out += "committed ";
      out += "loc " + loc.name;
      if (!loc.invariant.empty()) {
        out += " { inv ";
        for (size_t k = 0; k < loc.invariant.size(); ++k) {
          if (k != 0) out += " && ";
          out += printClockAtom(sys, loc.invariant[k]);
        }
        out += "; }";
      } else {
        out += ";";
      }
      out += "\n";
    }
    out += "  init " + a.location(a.initial()).name + ";\n";
    for (const Edge& e : a.edges()) {
      out += "  edge " + a.location(e.src).name + " -> " +
             a.location(e.dst).name + " {\n";
      if (!e.clockGuard.empty() || e.guard != kNoExpr) {
        out += "    guard ";
        bool first = true;
        for (const ClockConstraint& cc : e.clockGuard) {
          if (!first) out += " && ";
          out += printClockAtom(sys, cc);
          first = false;
        }
        if (e.guard != kNoExpr) {
          if (!first) out += " && ";
          out += ep.print(e.guard);
        }
        out += ";\n";
      }
      if (e.sync != Sync::kNone) {
        out += "    sync " + sys.channelName(e.chan) +
               (e.sync == Sync::kSend ? "!" : "?") + ";\n";
      }
      if (!e.resets.empty()) {
        out += "    reset ";
        for (size_t k = 0; k < e.resets.size(); ++k) {
          if (k != 0) out += ", ";
          out += sys.clockName(e.resets[k].clock);
          if (e.resets[k].value != 0) {
            out += " = " + std::to_string(e.resets[k].value);
          }
        }
        out += ";\n";
      }
      if (!e.assigns.empty()) {
        out += "    assign ";
        for (size_t k = 0; k < e.assigns.size(); ++k) {
          if (k != 0) out += ", ";
          const Assign& as = e.assigns[k];
          if (as.index == kNoExpr) {
            out += sys.varName(as.base);
          } else {
            out += baseName(sys.varName(as.base)) + "[" + ep.print(as.index) +
                   "]";
          }
          out += " = " + ep.print(as.rhs);
        }
        out += ";\n";
      }
      // Sync edges get the decorated channel name as their default
      // label; only deviations need an explicit statement.
      std::string defaultLabel;
      if (e.sync != Sync::kNone) {
        defaultLabel =
            sys.channelName(e.chan) + (e.sync == Sync::kSend ? "!" : "?");
      }
      if (!e.label.empty() && e.label != defaultLabel) {
        out += "    label \"" + e.label + "\";\n";
      }
      out += "  }\n";
    }
    out += "}\n";
  }

  for (const ParsedQuery& q : queries) {
    out += "\nquery reach";
    bool first = true;
    for (const auto& [proc, loc] : q.locations) {
      out += first ? " " : " && ";
      out += sys.automaton(proc).name() + "." +
             sys.automaton(proc).location(loc).name;
      first = false;
    }
    for (const ClockConstraint& cc : q.clockConstraints) {
      out += first ? " " : " && ";
      out += printClockAtom(sys, cc);
      first = false;
    }
    if (q.predicate != kNoExpr) {
      out += first ? " " : " && ";
      out += printExpr(sys, q.predicate);
      first = false;
    }
    out += ";\n";
  }
  return out;
}

}  // namespace ta
