// A small textual model format and parser, so networks of timed
// automata can be written and checked without C++ (UPPAAL models are
// XML + a C-like expression language; this is the equivalent idea in a
// compact form):
//
//   // one-line comments
//   clock x, y;
//   int v = 0;
//   int pos[4] = 0;
//   chan go;
//   broadcast chan all;
//
//   process Worker {
//     init warmup;
//     loc warmup { inv x <= 5; }
//     loc done;
//     urgent loc hold;
//     committed loc now;
//     edge warmup -> done {
//       guard x >= 3 && v < 2;
//       sync go!;
//       reset x;
//       assign v = v + 1, pos[v] = 0;
//       label "go";
//     }
//   }
//
//   query reach Worker.done && v == 1;
//
// Guards mix clock atoms (x >= 3, x - y < 2 — recognized because the
// names resolve to clocks) and integer expressions, conjoined at the
// top level exactly as in UPPAAL.  `query reach` lines compile into
// engine::Goal-compatible results.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ta/system.hpp"

namespace ta {

/// A parsed `query reach ...` line: location requirements plus an
/// integer predicate (kNoExpr if none).
struct ParsedQuery {
  std::vector<std::pair<ProcId, LocId>> locations;
  ExprRef predicate = kNoExpr;
  std::vector<ClockConstraint> clockConstraints;
};

struct ParseResult {
  std::unique_ptr<System> system;
  std::vector<ParsedQuery> queries;
};

/// Parse a model text. On error returns nullopt and fills *error with
/// "line N: message".  The returned system is finalized.
[[nodiscard]] std::optional<ParseResult> parseModel(const std::string& text,
                                                    std::string* error);

}  // namespace ta
