// A small textual model format and its compiler-grade frontend, so
// networks of timed automata can be written and checked without C++
// (UPPAAL models are XML + a C-like expression language; this is the
// equivalent idea in a compact form):
//
//   // one-line comments
//   clock x, y;
//   int v = 0;
//   int pos[4] = 0;
//   chan go;
//   broadcast chan all;
//
//   process Worker {
//     loc warmup { inv x <= 5; }
//     loc done;
//     init warmup;
//     urgent loc hold;
//     committed loc now;
//     edge warmup -> done {
//       guard x >= 3 && v < 2;
//       sync go!;
//       reset x;
//       assign v = v + 1, pos[v] = 0;
//       label "go";
//     }
//   }
//
//   query reach Worker.done && v == 1;
//
// Guards mix clock atoms (x >= 3, x - y < 2 — recognized because the
// names resolve to clocks) and integer expressions, conjoined at the
// top level exactly as in UPPAAL.  `query reach` lines compile into
// engine::Goal-compatible results.
//
// The frontend is a pipeline: a lexer producing tokens with line:col
// spans (ta/lexer.hpp), a recovering recursive-descent parser that
// synchronizes at declaration / process-item / edge-item boundaries
// and emits *multiple* structured diagnostics per run
// (ta/diagnostics.hpp), and a static-analysis pass suite over the
// parsed model (ta/lint.hpp). `parseModelEx` is the full pipeline;
// `parseModel` is the legacy single-error wrapper kept for existing
// call sites.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ta/diagnostics.hpp"
#include "ta/system.hpp"

namespace ta {

/// A parsed `query reach ...` line: location requirements plus an
/// integer predicate (kNoExpr if none).
struct ParsedQuery {
  std::vector<std::pair<ProcId, LocId>> locations;
  ExprRef predicate = kNoExpr;
  std::vector<ClockConstraint> clockConstraints;
};

struct ParseResult {
  std::unique_ptr<System> system;
  std::vector<ParsedQuery> queries;
};

/// Source spans for the named entities of a parsed model — the side
/// table the lint passes use to anchor their warnings. All vectors are
/// indexed by the corresponding id; they may be empty (hand-built
/// models), in which case lints fall back to zero spans.
struct SourceMap {
  std::vector<Span> clockDecls;               ///< [ClockId - 1]
  std::vector<Span> varDecls;                 ///< [VarId] (cells share)
  std::vector<Span> chanDecls;                ///< [ChanId]
  std::vector<std::vector<Span>> locDecls;    ///< [proc][loc]
  std::vector<std::vector<Span>> edgeDecls;   ///< [proc][edge]
  struct ExplicitLabel {
    ProcId proc = 0;
    std::string text;
    Span span;
  };
  /// `label "..."` statements as written (sync-derived default labels
  /// are not listed) — input to the duplicate-label lint.
  std::vector<ExplicitLabel> labels;
  std::vector<Span> queryDecls;  ///< [query index]
};

struct FrontendOptions {
  /// Run the static-analysis passes after a clean parse. Lint findings
  /// are warnings; they never change the parsed model.
  bool lint = true;
  /// Stop after this many parse errors (a kTooManyErrors diagnostic
  /// marks the cut).
  int maxErrors = 16;
};

struct FrontendResult {
  /// Never null. Finalized and engine-ready only when `ok`.
  std::unique_ptr<System> system;
  std::vector<ParsedQuery> queries;
  /// All diagnostics in source order (parse errors and lint warnings
  /// interleaved by position).
  std::vector<Diagnostic> diagnostics;
  SourceMap sourceMap;
  /// True iff no error-severity diagnostic was emitted. Warnings do
  /// not affect ok.
  bool ok = false;

  [[nodiscard]] size_t errorCount() const { return countErrors(diagnostics); }
  [[nodiscard]] size_t warningCount() const {
    return countWarnings(diagnostics);
  }
};

/// The full frontend pipeline: lex, parse with recovery, and (when the
/// parse is clean) finalize + lint.
[[nodiscard]] FrontendResult parseModelEx(const std::string& text,
                                          const FrontendOptions& opts = {});

/// Legacy single-error API: parse a model text. On error returns
/// nullopt and fills *error with "line N: message" (the first error
/// diagnostic). The returned system is finalized. Thin wrapper over
/// parseModelEx with lint disabled.
[[nodiscard]] std::optional<ParseResult> parseModel(const std::string& text,
                                                    std::string* error);

}  // namespace ta
