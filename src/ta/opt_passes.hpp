// The pre-exploration optimization pass pipeline and the static
// analyses it shares with the lint passes.
//
// The sharing is the point: L004 (unreachable location) and L006
// (never-enabled edge) are *detected* by the linter and *eliminated*
// by the optimizer through the same two functions below
// (`reachableLocations`, `classifyEdgeViability`), so the detector and
// the remover can never diverge — a model the linter calls clean is a
// model the optimizer leaves alone, and every removal the optimizer
// performs corresponds to a diagnostic the linter would have printed
// for the same (possibly already-pruned) input.
//
// The pipeline itself runs over the mutable IR of ta/ir.hpp; see
// DESIGN.md "Typed IR and the optimization pipeline" for the pass
// ordering and the per-pass soundness arguments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "dbm/bound.hpp"
#include "ta/expr.hpp"
#include "ta/model.hpp"

namespace ta {

struct Ir;
struct OptPins;

// -- Analyses shared with the lint passes (L004 / L005 / L006) -----------

/// Why an edge can never fire (or kViable). Mirrors the lint checks
/// bit-for-bit, including their precedence: a constant-false integer
/// guard wins over clock-guard analysis, and an unsatisfiable clock
/// guard *alone* is distinguished from one that only contradicts the
/// source invariant.
enum class EdgeViability : uint8_t {
  kViable,
  /// L006: the integer guard is a compile-time constant evaluating to 0.
  kConstFalseGuard,
  /// L006: the clock guard is unsatisfiable on its own.
  kClockGuardUnsat,
  /// L005: the clock guard contradicts the source location's invariant.
  kGuardContradictsInvariant,
};

[[nodiscard]] EdgeViability classifyEdgeViability(
    const ExprPool& pool, ExprRef guard,
    std::span<const ClockConstraint> clockGuard,
    std::span<const ClockConstraint> sourceInvariant, uint32_t dim);

/// Locations reachable from `initial` over the given (src, dst) edge
/// pairs — the L004 analysis.
[[nodiscard]] std::vector<bool> reachableLocations(
    size_t numLocations, LocId initial,
    std::span<const std::pair<LocId, LocId>> edges);

/// True when the expression contains no variable reference, i.e. is a
/// compile-time constant (the guard-precondition of the L006 check).
[[nodiscard]] bool isConstExpr(const ExprPool& pool, ExprRef e);

/// Mark every variable cell the expression may read in `read`
/// (size = number of variables). A dynamic array access marks the whole
/// cell range, like the lint usage collector does.
void collectExprReads(const ExprPool& pool, ExprRef e,
                      std::vector<uint8_t>& read);

// -- Pass pipeline configuration and accounting --------------------------

struct PassConfig {
  bool constFold = true;      ///< constant folding + const-var propagation
  bool removeDead = true;     ///< never-enabled edges + unreachable locations
  bool simplifyGuards = true; ///< drop invariant-implied guard conjuncts
  bool deadStores = false;    ///< drop assignments to never-read variables
  bool unifyClocks = false;   ///< collapse always-equal clocks
  bool compose = false;       ///< fuse trivially-sequential automata pairs
  int maxIterations = 8;      ///< fixpoint safety bound

  /// Options.optLevel mapping: 0 = everything off (the caller skips the
  /// optimizer entirely), 1 = folding + dead elimination + guard
  /// simplification, 2 = all passes.
  [[nodiscard]] static PassConfig forLevel(int level) {
    PassConfig c;
    if (level <= 0) {
      c.constFold = c.removeDead = c.simplifyGuards = false;
      return c;
    }
    if (level >= 2) {
      c.deadStores = c.unifyClocks = c.compose = true;
    }
    return c;
  }
};

/// Per-pass work counters, surfaced through engine::Stats.
struct PassStats {
  size_t foldedExprs = 0;           ///< constant-folding rewrites applied
  size_t removedLocations = 0;      ///< unreachable locations eliminated
  size_t removedEdges = 0;          ///< never-enabled / dangling edges cut
  size_t simplifiedConstraints = 0; ///< implied guard conjuncts dropped
  size_t elidedVars = 0;            ///< variables whose stores were elided
  size_t unifiedClocks = 0;         ///< clocks merged into a representative
  size_t composedProcesses = 0;     ///< process pairs fused into a product
  int iterations = 0;               ///< fixpoint rounds until quiescence
  double seconds = 0.0;             ///< wall time spent optimizing

  [[nodiscard]] bool any() const noexcept {
    return foldedExprs + removedLocations + removedEdges +
               simplifiedConstraints + elidedVars + unifiedClocks +
               composedProcesses !=
           0;
  }
};

// -- The passes (internal interface between ir.cpp and opt_passes.cpp) ---
// Each returns true when it changed the IR.

bool passConstFold(Ir& ir, PassStats& st);
bool passRemoveNeverEnabledEdges(Ir& ir, PassStats& st);
bool passRemoveDeadLocations(Ir& ir, PassStats& st);
bool passSimplifyGuards(Ir& ir, PassStats& st);
bool passDropDeadStores(Ir& ir, const OptPins& pins, PassStats& st);
bool passUnifyClocks(Ir& ir, const OptPins& pins, PassStats& st);
bool passComposePairs(Ir& ir, const OptPins& pins, PassStats& st);

/// Constant-fold `e` (written into `pool`, which may be the node's own
/// pool — the arena is append-only). `isConst`/`constVal` give the
/// constant-variable substitution (empty spans disable propagation).
/// Returns the same ref when nothing applied; bumps *applied per
/// rewrite otherwise. Folding matches ExprPool::eval exactly: division
/// and modulo by zero, out-of-range constant indices, and values
/// outside int32 are left unfolded.
[[nodiscard]] ExprRef foldExpr(ExprPool& pool, ExprRef e,
                               std::span<const uint8_t> isConst,
                               std::span<const int32_t> constVal,
                               size_t* applied);

}  // namespace ta
