// Token stream for the .gta model language, with precise source spans.
//
// Unlike the pre-diagnostics lexer this one never silently produces a
// bogus end-of-input token: invalid characters are skipped (one
// diagnostic per run of them), unterminated strings stop at the end of
// the line with a diagnostic, and integer literals that overflow the
// bound range are clamped with a diagnostic. Every token carries the
// 1-based line:col span of its first character, so parse errors can
// point at the exact offending token.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ta/diagnostics.hpp"

namespace ta {

enum class Tok : uint8_t {
  kEnd, kIdent, kInt, kString,
  kLBrace, kRBrace, kLBracket, kRBracket, kLParen, kRParen,
  kSemi, kComma, kDot, kArrow, kAssign,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAnd, kOr, kNot, kBang, kQuest, kColon,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  int64_t value = 0;
  Span span;
};

/// "';'", "'->'", "end of file", ... — for "expected X before Y"
/// messages.
[[nodiscard]] const char* tokName(Tok kind);

/// Describe a concrete token for an error message: "'foo'" for
/// identifiers, "'42'" for integers, "end of file" for kEnd, the
/// symbol otherwise.
[[nodiscard]] std::string describeToken(const Token& t);

class Lexer {
 public:
  /// Lexical diagnostics (invalid characters, unterminated strings,
  /// overflowing literals) are appended to *diags as they are found;
  /// at most kMaxLexDiags are emitted per run so adversarial input
  /// cannot flood the bag.
  Lexer(const std::string& text, std::vector<Diagnostic>* diags);

  [[nodiscard]] const Token& peek() const { return cur_; }
  Token next() {
    Token t = cur_;
    advance();
    return t;
  }

  static constexpr int kMaxLexDiags = 32;

 private:
  void advance();
  void skipSpaceAndComments();
  [[nodiscard]] Span here(int len) const;
  void report(DiagCode code, Span span, std::string message);

  // Owned copy: the lexer must stay valid when constructed from a
  // temporary (tests and tools lex string literals directly).
  std::string text_;
  std::vector<Diagnostic>* diags_;
  size_t pos_ = 0;
  int line_ = 1;
  size_t lineStart_ = 0;  ///< Offset of the first character of line_.
  int emitted_ = 0;
  Token cur_;
};

}  // namespace ta
