// Static per-location clock-bound analysis (Behrmann, Bouyer, Larsen,
// Pelánek: "Lower and Upper Bounds in Zone-Based Abstractions of Timed
// Automata", and the UPPAAL "static guard analysis" lineage).
//
// For every automaton location ℓ and clock x the analysis computes
//
//   L(ℓ, x) — the largest constant c such that a constraint of the
//             form x > c / x >= c can still be *observed* from ℓ
//             before x is next reset, and
//   U(ℓ, x) — the same for upper-bound constraints x < c / x <= c,
//
// by a backward fixpoint over the automaton's edges: a location
// contributes the constants of its own invariant and of the guards of
// its outgoing edges, and inherits the bounds of each successor
// location across every edge that does not reset the clock.  A reset
// x := v with v > 0 additionally floors both bounds of x at v in the
// destination (the clock holds v outright there, and extrapolation
// must not erase that).
//
// -1 means "no such constraint is observable" — the matching bound may
// be abstracted away entirely.  The per-location tables refine the
// single global maximum `System::maxBounds()` (Extra_M): for every
// location, L(ℓ,x) <= M(x) and U(ℓ,x) <= M(x), so the induced
// Extra+_LU abstraction is coarser than (abstracts at least as much
// as) global Extra_M while still preserving location reachability.
#pragma once

#include <span>
#include <vector>

#include "ta/system.hpp"

namespace ta {

/// Lower/upper bound constants of one clock at one location.
/// -1 = no observable constraint of that kind.
struct ClockLU {
  ClockId clock = 0;
  dbm::value_t lower = -1;  ///< L(l, clock)
  dbm::value_t upper = -1;  ///< U(l, clock)
};

/// Per-automaton, per-location LU tables in sparse form: only clocks
/// with at least one observable bound at the location appear, sorted
/// by clock id. Clocks never compared by an automaton never appear in
/// its rows — the engine combines rows across the location vector by
/// pointwise max, so absence is the identity.
class LUTable {
 public:
  [[nodiscard]] const std::vector<ClockLU>& at(ProcId p, LocId l) const {
    return rows_[static_cast<size_t>(p)][static_cast<size_t>(l)];
  }

  /// Dense lookups for tests and diagnostics (linear scan of the row).
  [[nodiscard]] dbm::value_t lower(ProcId p, LocId l, ClockId x) const {
    for (const ClockLU& e : at(p, l)) {
      if (e.clock == x) return e.lower;
    }
    return -1;
  }
  [[nodiscard]] dbm::value_t upper(ProcId p, LocId l, ClockId x) const {
    for (const ClockLU& e : at(p, l)) {
      if (e.clock == x) return e.upper;
    }
    return -1;
  }

  [[nodiscard]] size_t numAutomata() const noexcept { return rows_.size(); }

 private:
  friend LUTable analyzeClockBounds(const System& sys);

  // rows_[proc][loc] = sparse LU row.
  std::vector<std::vector<std::vector<ClockLU>>> rows_;
};

/// Run the backward fixpoint over every automaton of a finalized
/// system. Pure function of the system structure; safe to call from
/// multiple threads on the same (immutable) system.
[[nodiscard]] LUTable analyzeClockBounds(const System& sys);

// -- Minimum remaining processing time ------------------------------------
//
// For cost-optimal (makespan) search the engine needs an *admissible*
// lower bound on the time that must still elapse before a location
// vector can become a goal. The same backward style as the LU fixpoint
// gives one per automaton: a location's outgoing edge whose guard
// demands x >= c on a clock x that is provably 0 on entry to the
// location ("fresh": reset to 0 by every incoming edge, and the
// automaton's start counts as a fresh entry to the initial location)
// cannot fire until c time units have been spent there, so every path
// from the location to a target accumulates at least the sum of those
// waits. Ignoring synchronization partners, integer guards, urgency
// and invariants only shortens paths — the bound stays a lower bound.
//
// Two values per location, because the current state may already have
// dwelt in its location with the guard clocks partially (or fully)
// elapsed:
//
//   entry(p, l) — min remaining time for runs *entering* l fresh
//                 (used for the successors along a path), and
//   from(p, l)  — min remaining time from an arbitrary state already
//                 at l: the own-location wait is dropped, only the
//                 entry() values of the successors remain.
//
// The network-level heuristic is max over automata with targets: each
// automaton's remaining time elapses on the same global time axis, so
// every one is individually a lower bound on the remaining makespan.

/// "No path from here to any target" — a state whose automaton sits at
/// such a location can never satisfy the goal.
inline constexpr dbm::value_t kUnreachableRemaining = dbm::kMaxValue;

class RemainingTimeTable {
 public:
  /// Min remaining time when entering l fresh (kUnreachableRemaining
  /// if no target is reachable from l).
  [[nodiscard]] dbm::value_t entry(ProcId p, LocId l) const {
    return entry_[static_cast<size_t>(p)][static_cast<size_t>(l)];
  }
  /// Min remaining time from an arbitrary already-dwelling state at l.
  [[nodiscard]] dbm::value_t from(ProcId p, LocId l) const {
    return from_[static_cast<size_t>(p)][static_cast<size_t>(l)];
  }
  /// Whether automaton p had a nonempty target set (procs without
  /// targets contribute nothing to the network max).
  [[nodiscard]] bool hasTargets(ProcId p) const {
    return hasTargets_[static_cast<size_t>(p)];
  }

  /// The heuristic for a location vector: max over automata with
  /// targets of from(p, locs[p]).
  [[nodiscard]] dbm::value_t lowerBound(std::span<const LocId> locs) const {
    dbm::value_t h = 0;
    for (size_t p = 0; p < from_.size(); ++p) {
      if (!hasTargets_[p]) continue;
      const dbm::value_t v =
          from_[p][static_cast<size_t>(locs[p])];
      if (v > h) h = v;
    }
    return h;
  }

 private:
  friend RemainingTimeTable analyzeMinRemainingTime(
      const System& sys, const std::vector<std::vector<LocId>>& targets);

  std::vector<std::vector<dbm::value_t>> entry_;
  std::vector<std::vector<dbm::value_t>> from_;
  std::vector<bool> hasTargets_;
};

/// Backward Bellman fixpoint over every automaton of a finalized
/// system. `targets[p]` lists automaton p's goal locations (empty =
/// this automaton does not constrain the goal). Pure function of the
/// system structure.
[[nodiscard]] RemainingTimeTable analyzeMinRemainingTime(
    const System& sys, const std::vector<std::vector<LocId>>& targets);

}  // namespace ta
