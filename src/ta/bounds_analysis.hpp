// Static per-location clock-bound analysis (Behrmann, Bouyer, Larsen,
// Pelánek: "Lower and Upper Bounds in Zone-Based Abstractions of Timed
// Automata", and the UPPAAL "static guard analysis" lineage).
//
// For every automaton location ℓ and clock x the analysis computes
//
//   L(ℓ, x) — the largest constant c such that a constraint of the
//             form x > c / x >= c can still be *observed* from ℓ
//             before x is next reset, and
//   U(ℓ, x) — the same for upper-bound constraints x < c / x <= c,
//
// by a backward fixpoint over the automaton's edges: a location
// contributes the constants of its own invariant and of the guards of
// its outgoing edges, and inherits the bounds of each successor
// location across every edge that does not reset the clock.  A reset
// x := v with v > 0 additionally floors both bounds of x at v in the
// destination (the clock holds v outright there, and extrapolation
// must not erase that).
//
// -1 means "no such constraint is observable" — the matching bound may
// be abstracted away entirely.  The per-location tables refine the
// single global maximum `System::maxBounds()` (Extra_M): for every
// location, L(ℓ,x) <= M(x) and U(ℓ,x) <= M(x), so the induced
// Extra+_LU abstraction is coarser than (abstracts at least as much
// as) global Extra_M while still preserving location reachability.
#pragma once

#include <vector>

#include "ta/system.hpp"

namespace ta {

/// Lower/upper bound constants of one clock at one location.
/// -1 = no observable constraint of that kind.
struct ClockLU {
  ClockId clock = 0;
  dbm::value_t lower = -1;  ///< L(l, clock)
  dbm::value_t upper = -1;  ///< U(l, clock)
};

/// Per-automaton, per-location LU tables in sparse form: only clocks
/// with at least one observable bound at the location appear, sorted
/// by clock id. Clocks never compared by an automaton never appear in
/// its rows — the engine combines rows across the location vector by
/// pointwise max, so absence is the identity.
class LUTable {
 public:
  [[nodiscard]] const std::vector<ClockLU>& at(ProcId p, LocId l) const {
    return rows_[static_cast<size_t>(p)][static_cast<size_t>(l)];
  }

  /// Dense lookups for tests and diagnostics (linear scan of the row).
  [[nodiscard]] dbm::value_t lower(ProcId p, LocId l, ClockId x) const {
    for (const ClockLU& e : at(p, l)) {
      if (e.clock == x) return e.lower;
    }
    return -1;
  }
  [[nodiscard]] dbm::value_t upper(ProcId p, LocId l, ClockId x) const {
    for (const ClockLU& e : at(p, l)) {
      if (e.clock == x) return e.upper;
    }
    return -1;
  }

  [[nodiscard]] size_t numAutomata() const noexcept { return rows_.size(); }

 private:
  friend LUTable analyzeClockBounds(const System& sys);

  // rows_[proc][loc] = sparse LU row.
  std::vector<std::vector<std::vector<ClockLU>>> rows_;
};

/// Run the backward fixpoint over every automaton of a finalized
/// system. Pure function of the system structure; safe to call from
/// multiple threads on the same (immutable) system.
[[nodiscard]] LUTable analyzeClockBounds(const System& sys);

}  // namespace ta
