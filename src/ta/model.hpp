// Core model structures for networks of timed automata (UPPAAL-style):
// locations with invariants (normal / urgent / committed), edges with
// clock guards, integer guards, binary or broadcast channel
// synchronization, clock resets, and integer assignments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dbm/bound.hpp"
#include "ta/expr.hpp"

namespace ta {

/// Clock index. Clock 0 is the implicit reference clock; model clocks
/// are numbered from 1.
using ClockId = int32_t;
using ChanId = int32_t;
using LocId = int32_t;
using ProcId = int32_t;

/// Atomic clock constraint  x_i - x_j  <bound>  b  (j == 0 for bounds
/// against a constant, i == 0 for lower bounds).
struct ClockConstraint {
  ClockId i = 0;
  ClockId j = 0;
  dbm::raw_t bound = dbm::kZeroBound;
};

// Constraint-building helpers used all over model construction code.
[[nodiscard]] inline ClockConstraint ccLe(ClockId x, dbm::value_t c) {
  return {x, 0, dbm::boundWeak(c)};
}
[[nodiscard]] inline ClockConstraint ccLt(ClockId x, dbm::value_t c) {
  return {x, 0, dbm::boundStrict(c)};
}
[[nodiscard]] inline ClockConstraint ccGe(ClockId x, dbm::value_t c) {
  return {0, x, dbm::boundWeak(-c)};
}
[[nodiscard]] inline ClockConstraint ccGt(ClockId x, dbm::value_t c) {
  return {0, x, dbm::boundStrict(-c)};
}
/// x - y <= c
[[nodiscard]] inline ClockConstraint ccDiffLe(ClockId x, ClockId y,
                                              dbm::value_t c) {
  return {x, y, dbm::boundWeak(c)};
}

/// x := value (UPPAAL resets are to constants in this fragment).
struct ClockReset {
  ClockId clock = 0;
  dbm::value_t value = 0;
};

/// Integer assignment `base[index] := rhs` (index == kNoExpr for
/// scalars). Assignments on an edge execute in order, observing the
/// effects of earlier ones — UPPAAL's sequential assignment semantics.
struct Assign {
  VarId base = 0;
  ExprRef index = kNoExpr;
  int32_t arraySize = 1;
  ExprRef rhs = kNoExpr;
};

enum class Sync : uint8_t { kNone, kSend, kReceive };

enum class ChanKind : uint8_t { kBinary, kBroadcast };

struct Edge {
  LocId src = 0;
  LocId dst = 0;
  std::vector<ClockConstraint> clockGuard;
  ExprRef guard = kNoExpr;
  ChanId chan = -1;
  Sync sync = Sync::kNone;
  std::vector<ClockReset> resets;
  std::vector<Assign> assigns;
  /// Action label recorded in traces; sync edges default to the channel
  /// name decorated with ! or ?.
  std::string label;
};

struct Location {
  std::string name;
  std::vector<ClockConstraint> invariant;
  /// Urgent: time may not pass while any process is here.
  bool urgent = false;
  /// Committed: time may not pass AND the next transition must involve
  /// a committed process.
  bool committed = false;
};

}  // namespace ta
