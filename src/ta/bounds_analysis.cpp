#include "ta/bounds_analysis.hpp"

#include <algorithm>
#include <cassert>

namespace ta {

namespace {

/// Fold one constraint's constants into the dense L/U rows of the
/// location it is observable at.  A constraint x_i - x_j ≺ c acts as an
/// upper-type bound on x_i (constant c) and a lower-type bound on x_j
/// (constant -c); either side is clamped at 0 — a negative constant
/// constrains nothing a nonnegative clock can distinguish, but the
/// clock was still compared, so the bound becomes 0 rather than
/// staying at the "never observed" -1.
void foldConstraint(const ClockConstraint& cc, std::vector<dbm::value_t>& lo,
                    std::vector<dbm::value_t>& up) {
  const dbm::value_t c = dbm::boundValue(cc.bound);
  if (cc.i != 0) {
    auto& u = up[static_cast<size_t>(cc.i)];
    u = std::max(u, std::max<dbm::value_t>(c, 0));
  }
  if (cc.j != 0) {
    auto& l = lo[static_cast<size_t>(cc.j)];
    l = std::max(l, std::max<dbm::value_t>(-c, 0));
  }
}

}  // namespace

RemainingTimeTable analyzeMinRemainingTime(
    const System& sys, const std::vector<std::vector<LocId>>& targets) {
  assert(sys.finalized() && "System::finalize() must run before analysis");
  assert(targets.size() == sys.numAutomata());
  const size_t dim = sys.dbmDimension();
  constexpr int64_t kInf = kUnreachableRemaining;

  RemainingTimeTable table;
  table.entry_.resize(sys.numAutomata());
  table.from_.resize(sys.numAutomata());
  table.hasTargets_.resize(sys.numAutomata());

  for (size_t pi = 0; pi < sys.numAutomata(); ++pi) {
    const Automaton& a = sys.automaton(static_cast<ProcId>(pi));
    const size_t nLocs = a.numLocations();
    auto& entry = table.entry_[pi];
    auto& from = table.from_[pi];
    table.hasTargets_[pi] = !targets[pi].empty();
    if (targets[pi].empty()) {
      // Unconstrained automaton: zero everywhere, never prunes.
      entry.assign(nLocs, 0);
      from.assign(nLocs, 0);
      continue;
    }

    // fresh[l][x]: clock x is provably 0 whenever l is entered — every
    // incoming edge resets it to 0, and reaching the initial location
    // "from the start" (all clocks 0) counts as a resetting entry.
    std::vector<std::vector<bool>> fresh(nLocs,
                                         std::vector<bool>(dim, true));
    for (const Edge& e : a.edges()) {
      auto& f = fresh[static_cast<size_t>(e.dst)];
      for (size_t x = 1; x < dim; ++x) {
        const bool zeroed = std::any_of(
            e.resets.begin(), e.resets.end(), [&](const ClockReset& r) {
              return static_cast<size_t>(r.clock) == x && r.value == 0;
            });
        if (!zeroed) f[x] = false;
      }
    }
    // A location no edge enters and that is not initial is unreachable;
    // its freshness is irrelevant. (The initial location's virtual
    // entry satisfies every freshness claim.)

    // wait[e]: time that must pass inside src(e) before edge e can
    // fire, from lower-bound guards x >= c / x > c on fresh clocks.
    const auto& edges = a.edges();
    std::vector<int64_t> wait(edges.size(), 0);
    for (size_t ei = 0; ei < edges.size(); ++ei) {
      const auto& f = fresh[static_cast<size_t>(edges[ei].src)];
      for (const ClockConstraint& cc : edges[ei].clockGuard) {
        if (cc.i != 0 || cc.j == 0) continue;  // not a lower bound
        if (!f[static_cast<size_t>(cc.j)]) continue;
        const int64_t c = -dbm::boundValue(cc.bound);
        if (c > wait[ei]) wait[ei] = c;
      }
    }

    // Backward Bellman fixpoint for entry(): targets at 0, everything
    // else the min over outgoing edges of wait + entry(dst). Values
    // only decrease from kInf and are bounded below by 0, so the
    // iteration terminates (each pass that changes anything lowers at
    // least one location; paths are finite).
    std::vector<int64_t> d(nLocs, kInf);
    for (LocId t : targets[pi]) d[static_cast<size_t>(t)] = 0;
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t ei = 0; ei < edges.size(); ++ei) {
        const auto src = static_cast<size_t>(edges[ei].src);
        if (d[src] == 0) continue;  // targets stay 0
        const int64_t dd = d[static_cast<size_t>(edges[ei].dst)];
        if (dd == kInf) continue;
        const int64_t via = std::min(kInf, wait[ei] + dd);
        if (via < d[src]) {
          d[src] = via;
          changed = true;
        }
      }
    }

    // from(): the current state may already have dwelt at l with the
    // guard clocks grown past their bounds, so its own wait must be
    // dropped — only the successors' entry() values survive.
    entry.assign(nLocs, 0);
    from.assign(nLocs, 0);
    for (size_t li = 0; li < nLocs; ++li) {
      entry[li] = static_cast<dbm::value_t>(d[li]);
      if (d[li] == 0) {
        from[li] = 0;
        continue;
      }
      int64_t best = kInf;
      for (int32_t ei : a.outgoing(static_cast<LocId>(li))) {
        const int64_t dd =
            d[static_cast<size_t>(edges[static_cast<size_t>(ei)].dst)];
        if (dd < best) best = dd;
      }
      from[li] = static_cast<dbm::value_t>(best);
    }
  }
  return table;
}

LUTable analyzeClockBounds(const System& sys) {
  assert(sys.finalized() && "System::finalize() must run before analysis");
  const size_t dim = sys.dbmDimension();

  LUTable table;
  table.rows_.resize(sys.numAutomata());

  for (size_t pi = 0; pi < sys.numAutomata(); ++pi) {
    const Automaton& a = sys.automaton(static_cast<ProcId>(pi));
    const size_t nLocs = a.numLocations();

    // Dense working arrays; -1 = no observable bound.
    std::vector<std::vector<dbm::value_t>> lo(nLocs), up(nLocs);
    for (size_t li = 0; li < nLocs; ++li) {
      lo[li].assign(dim, -1);
      up[li].assign(dim, -1);
    }

    // Local contributions: invariants and outgoing guards. A nonzero
    // reset x := v floors both bounds of x at v in the destination —
    // the clock holds v outright there and extrapolation must keep the
    // value observable (mirrors the reset handling of the global
    // maxBounds computation).
    for (size_t li = 0; li < nLocs; ++li) {
      for (const ClockConstraint& cc :
           a.location(static_cast<LocId>(li)).invariant) {
        foldConstraint(cc, lo[li], up[li]);
      }
    }
    for (const Edge& e : a.edges()) {
      const auto src = static_cast<size_t>(e.src);
      const auto dst = static_cast<size_t>(e.dst);
      for (const ClockConstraint& cc : e.clockGuard) {
        foldConstraint(cc, lo[src], up[src]);
      }
      for (const ClockReset& r : e.resets) {
        if (r.value > 0) {
          auto& l = lo[dst][static_cast<size_t>(r.clock)];
          auto& u = up[dst][static_cast<size_t>(r.clock)];
          l = std::max(l, r.value);
          u = std::max(u, r.value);
        }
      }
    }

    // Backward fixpoint: bounds observable at the destination of an
    // edge are observable at its source for every clock the edge does
    // not reset (a reset severs observability — the post-reset value
    // is what later guards see).
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Edge& e : a.edges()) {
        const auto src = static_cast<size_t>(e.src);
        const auto dst = static_cast<size_t>(e.dst);
        for (size_t x = 1; x < dim; ++x) {
          const bool isReset = std::any_of(
              e.resets.begin(), e.resets.end(), [&](const ClockReset& r) {
                return static_cast<size_t>(r.clock) == x;
              });
          if (isReset) continue;
          if (lo[dst][x] > lo[src][x]) {
            lo[src][x] = lo[dst][x];
            changed = true;
          }
          if (up[dst][x] > up[src][x]) {
            up[src][x] = up[dst][x];
            changed = true;
          }
        }
      }
    }

    // Sparse rows: only clocks this automaton observes at the location.
    auto& rows = table.rows_[pi];
    rows.resize(nLocs);
    for (size_t li = 0; li < nLocs; ++li) {
      for (size_t x = 1; x < dim; ++x) {
        if (lo[li][x] >= 0 || up[li][x] >= 0) {
          rows[li].push_back(ClockLU{static_cast<ClockId>(x), lo[li][x],
                                     up[li][x]});
        }
      }
    }
  }
  return table;
}

}  // namespace ta
