#include "ta/bounds_analysis.hpp"

#include <algorithm>
#include <cassert>

namespace ta {

namespace {

/// Fold one constraint's constants into the dense L/U rows of the
/// location it is observable at.  A constraint x_i - x_j ≺ c acts as an
/// upper-type bound on x_i (constant c) and a lower-type bound on x_j
/// (constant -c); either side is clamped at 0 — a negative constant
/// constrains nothing a nonnegative clock can distinguish, but the
/// clock was still compared, so the bound becomes 0 rather than
/// staying at the "never observed" -1.
void foldConstraint(const ClockConstraint& cc, std::vector<dbm::value_t>& lo,
                    std::vector<dbm::value_t>& up) {
  const dbm::value_t c = dbm::boundValue(cc.bound);
  if (cc.i != 0) {
    auto& u = up[static_cast<size_t>(cc.i)];
    u = std::max(u, std::max<dbm::value_t>(c, 0));
  }
  if (cc.j != 0) {
    auto& l = lo[static_cast<size_t>(cc.j)];
    l = std::max(l, std::max<dbm::value_t>(-c, 0));
  }
}

}  // namespace

LUTable analyzeClockBounds(const System& sys) {
  assert(sys.finalized() && "System::finalize() must run before analysis");
  const size_t dim = sys.dbmDimension();

  LUTable table;
  table.rows_.resize(sys.numAutomata());

  for (size_t pi = 0; pi < sys.numAutomata(); ++pi) {
    const Automaton& a = sys.automaton(static_cast<ProcId>(pi));
    const size_t nLocs = a.numLocations();

    // Dense working arrays; -1 = no observable bound.
    std::vector<std::vector<dbm::value_t>> lo(nLocs), up(nLocs);
    for (size_t li = 0; li < nLocs; ++li) {
      lo[li].assign(dim, -1);
      up[li].assign(dim, -1);
    }

    // Local contributions: invariants and outgoing guards. A nonzero
    // reset x := v floors both bounds of x at v in the destination —
    // the clock holds v outright there and extrapolation must keep the
    // value observable (mirrors the reset handling of the global
    // maxBounds computation).
    for (size_t li = 0; li < nLocs; ++li) {
      for (const ClockConstraint& cc :
           a.location(static_cast<LocId>(li)).invariant) {
        foldConstraint(cc, lo[li], up[li]);
      }
    }
    for (const Edge& e : a.edges()) {
      const auto src = static_cast<size_t>(e.src);
      const auto dst = static_cast<size_t>(e.dst);
      for (const ClockConstraint& cc : e.clockGuard) {
        foldConstraint(cc, lo[src], up[src]);
      }
      for (const ClockReset& r : e.resets) {
        if (r.value > 0) {
          auto& l = lo[dst][static_cast<size_t>(r.clock)];
          auto& u = up[dst][static_cast<size_t>(r.clock)];
          l = std::max(l, r.value);
          u = std::max(u, r.value);
        }
      }
    }

    // Backward fixpoint: bounds observable at the destination of an
    // edge are observable at its source for every clock the edge does
    // not reset (a reset severs observability — the post-reset value
    // is what later guards see).
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Edge& e : a.edges()) {
        const auto src = static_cast<size_t>(e.src);
        const auto dst = static_cast<size_t>(e.dst);
        for (size_t x = 1; x < dim; ++x) {
          const bool isReset = std::any_of(
              e.resets.begin(), e.resets.end(), [&](const ClockReset& r) {
                return static_cast<size_t>(r.clock) == x;
              });
          if (isReset) continue;
          if (lo[dst][x] > lo[src][x]) {
            lo[src][x] = lo[dst][x];
            changed = true;
          }
          if (up[dst][x] > up[src][x]) {
            up[src][x] = up[dst][x];
            changed = true;
          }
        }
      }
    }

    // Sparse rows: only clocks this automaton observes at the location.
    auto& rows = table.rows_[pi];
    rows.resize(nLocs);
    for (size_t li = 0; li < nLocs; ++li) {
      for (size_t x = 1; x < dim; ++x) {
        if (lo[li][x] >= 0 || up[li][x] >= 0) {
          rows[li].push_back(ClockLU{static_cast<ClockId>(x), lo[li][x],
                                     up[li][x]});
        }
      }
    }
  }
  return table;
}

}  // namespace ta
