// Typed model IR for the pre-exploration optimizer.
//
// `Ir::lower` deep-copies a finalized System into a mutable form the
// passes of ta/opt_passes.hpp can rewrite freely (the System builder is
// append-only and its derived tables would go stale under mutation).
// `optimizeModel` runs the pass pipeline to a fixpoint and, when
// anything changed, emits a fresh finalized System together with the
// maps the engine bridge needs:
//
//   forward  — remap a reachability goal (locations, predicate, clock
//              constraints) onto the optimized system;
//   backward — remap a witness trace's transitions onto the original
//              system's (process, edge) pairs so concretization and
//              validation run against the model the caller built.
//
// Everything here is per-run and goal-dependent (the pins), so the
// optimizer is invoked lazily by Reachability::run / BestFirst::run
// rather than eagerly at model-construction time.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "ta/opt_passes.hpp"
#include "ta/system.hpp"

namespace ta {

/// Provenance of one optimized edge: the original (process, edge)
/// pair(s) it stands for — two entries when composition fused a binary
/// synchronization (sender first), one otherwise.
struct IrOrigin {
  ProcId proc = 0;
  int32_t edge = 0;
};

struct IrEdge {
  LocId src = 0;
  LocId dst = 0;
  std::vector<ClockConstraint> clockGuard;
  ExprRef guard = kNoExpr;  ///< in Ir::pool
  ChanId chan = -1;
  Sync sync = Sync::kNone;
  std::vector<ClockReset> resets;
  std::vector<Assign> assigns;  ///< exprs in Ir::pool
  std::string label;
  std::vector<IrOrigin> origin;
};

struct IrLocation {
  std::string name;
  std::vector<ClockConstraint> invariant;
  bool urgent = false;
  bool committed = false;
  /// Goal- or heuristic-referenced: must survive dead-location removal
  /// even when statically unreachable (an unreachable goal location is
  /// how callers ask "prove this can't happen").
  bool pinned = false;
};

struct IrProcess {
  std::string name;
  std::vector<IrLocation> locs;
  std::vector<IrEdge> edges;
  LocId init = 0;
  std::vector<ProcId> origProcs;  ///< >1 after composition
  bool pinned = false;            ///< may not be composed away
};

/// What one specific reachability run needs preserved. Everything else
/// is fair game for the passes.
struct OptPins {
  /// Goal and heuristic-target locations (kept even if unreachable;
  /// their processes are implicitly composition-pinned).
  std::vector<std::pair<ProcId, LocId>> locations;
  /// Processes that may not be composed (beyond those of `locations`).
  std::vector<ProcId> processes;
  /// Variables the goal predicate reads: their stores stay.
  std::vector<VarId> vars;
  /// Clock constraints of the goal: unification must keep them
  /// satisfiable-representable (degenerate-unsat pairs are not merged).
  std::vector<ClockConstraint> clockConstraints;
  /// Deadlock goals disable composition (conservative).
  bool deadlockGoal = false;
};

/// The mutable optimization IR plus the running orig→current maps the
/// passes keep consistent as they renumber.
struct Ir {
  ExprPool pool;
  std::vector<IrProcess> procs;

  // Global tables copied from the source (variables and channels are
  // never renumbered; clocks are only merged, never reordered).
  size_t numClocks = 0;
  std::vector<std::string> clockNames;  ///< [c-1] for clock c
  std::vector<int32_t> varInit;
  std::vector<std::string> varNames;
  std::vector<std::pair<VarId, int32_t>> arrays;
  std::vector<std::string> chanNames;
  std::vector<ChanKind> chanKinds;

  /// Cumulative unification: original clock -> representative original
  /// clock (identity at lowering; index 0 stays 0).
  std::vector<ClockId> clockRep;
  /// Original process -> current IR process index.
  std::vector<int32_t> procOf;
  /// Original (process, location) -> current IR location (-1 once the
  /// location was removed or its process composed away).
  std::vector<std::vector<LocId>> locOf;
  /// Variables already counted by PassStats::elidedVars (the dead-store
  /// pass cascades over iterations; each var is reported once).
  std::vector<uint8_t> elidedSeen;

  const System* source = nullptr;

  [[nodiscard]] static Ir lower(const System& sys, const OptPins& pins);

  /// DBM dimension of the (un-renumbered) IR clock space.
  [[nodiscard]] uint32_t dim() const noexcept {
    return static_cast<uint32_t>(numClocks) + 1;
  }
};

/// Result of optimizing a System for one run.
class OptimizedModel {
 public:
  /// False when the pipeline found nothing to do; the caller then runs
  /// the original system directly and `system()` must not be used.
  [[nodiscard]] bool changed() const noexcept { return changed_; }
  [[nodiscard]] const System& system() const noexcept { return sys_; }
  [[nodiscard]] const PassStats& stats() const noexcept { return stats_; }

  // -- Forward maps (original -> optimized) ------------------------------

  [[nodiscard]] ProcId mapProc(ProcId p) const {
    return procMap_[static_cast<size_t>(p)];
  }
  /// Valid for pinned locations and every location that survived; -1
  /// for removed/composed locations (never the case for goal pins).
  [[nodiscard]] LocId mapLoc(ProcId p, LocId l) const {
    return locMap_[static_cast<size_t>(p)][static_cast<size_t>(l)];
  }
  [[nodiscard]] ClockId mapClock(ClockId c) const {
    return c == 0 ? 0 : clockMap_[static_cast<size_t>(c)];
  }
  /// Remap a goal clock constraint. Constraints whose clocks were
  /// unified to the same representative degenerate to x-x: satisfiable
  /// ones are returned as the trivial {0,0,<=0} (drop-equivalent);
  /// unification never merges pairs with unsatisfiable pinned
  /// constraints, so the unsat case cannot arise for pinned goals.
  [[nodiscard]] ClockConstraint mapConstraint(const ClockConstraint& cc) const;
  /// Rewrite a goal predicate from the original pool into the optimized
  /// system's pool, applying the final constant-variable substitution.
  [[nodiscard]] ExprRef mapExpr(const ExprPool& srcPool, ExprRef e);

  // -- Backward map (optimized transition part -> original parts) --------

  [[nodiscard]] const std::vector<IrOrigin>& originOf(ProcId p,
                                                      int32_t edge) const {
    return origins_[static_cast<size_t>(p)][static_cast<size_t>(edge)];
  }

 private:
  friend OptimizedModel optimizeModel(const System& sys, const OptPins& pins,
                                      const PassConfig& cfg);

  System sys_;
  PassStats stats_;
  bool changed_ = false;
  std::vector<ProcId> procMap_;
  std::vector<std::vector<LocId>> locMap_;
  std::vector<ClockId> clockMap_;  ///< [c] for original clock c (index 0 = 0)
  std::vector<std::vector<std::vector<IrOrigin>>> origins_;
  /// Final constant-variable substitution (for goal-predicate mapping).
  std::vector<uint8_t> varIsConst_;
  std::vector<int32_t> varConstVal_;
};

/// Lower, run the pipeline to a fixpoint, emit. The returned model owns
/// the optimized System by value; keep it alive as long as any engine
/// references `system()`.
[[nodiscard]] OptimizedModel optimizeModel(const System& sys,
                                           const OptPins& pins,
                                           const PassConfig& cfg);

}  // namespace ta
