// Structured diagnostics for the .gta frontend.
//
// Every problem the frontend finds — lexical, syntactic, or from the
// static-analysis (lint) passes — is a `Diagnostic`: a severity, a
// stable machine-readable code (P0xx for parse errors, L0xx for
// lints), the exact source span of the offending token or construct,
// a human message, and an optional secondary note ("first declared at
// line 3"). A single frontend run produces *many* diagnostics: the
// parser recovers at declaration, process-item, and edge-item
// boundaries instead of bailing on the first error.
//
// The code table is an X-macro so the enum, the names, and the
// all-codes list (used by the golden-corpus coverage gate in
// tests/ta/golden_diag_test.cpp) can never drift apart.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ta {

/// Half-open source region: 1-based line and column plus a length in
/// characters. `line == 0` means "no position" (diagnostics on
/// hand-built models that never came from text).
struct Span {
  int line = 0;
  int col = 0;
  int len = 0;
};

enum class Severity : uint8_t { kError, kWarning };

// clang-format off
#define TA_DIAG_CODE_TABLE(X)                                          \
  /* --- parse / lex errors --------------------------------------- */ \
  X(kUnexpectedToken,           "P001")                                \
  X(kUnexpectedDecl,            "P002")                                \
  X(kRedefinition,              "P003")                                \
  X(kUndefinedName,             "P004")                                \
  X(kBadConstant,               "P005")                                \
  X(kBadSync,                   "P006")                                \
  X(kUnterminatedString,        "P007")                                \
  X(kInvalidCharacter,          "P008")                                \
  X(kBadClockConstraint,        "P009")                                \
  X(kNestingTooDeep,            "P010")                                \
  X(kTooManyErrors,             "P011")                                \
  X(kEmptyProcess,              "P012")                                \
  /* --- lint passes (always warnings) ---------------------------- */ \
  X(kUnusedClock,               "L001")                                \
  X(kUnusedVar,                 "L002")                                \
  X(kUnusedChannel,             "L003")                                \
  X(kUnreachableLocation,       "L004")                                \
  X(kGuardContradictsInvariant, "L005")                                \
  X(kNeverEnabledEdge,          "L006")                                \
  X(kSuspiciousUrgency,         "L007")                                \
  X(kDuplicateLabel,            "L008")                                \
  X(kConstantOutOfRange,        "L009")                                \
  X(kNoQuery,                   "L010")
// clang-format on

enum class DiagCode : uint8_t {
#define TA_DIAG_ENUM(name, str) name,
  TA_DIAG_CODE_TABLE(TA_DIAG_ENUM)
#undef TA_DIAG_ENUM
};

/// "P001", "L004", ... — the stable name written in golden-corpus
/// expectation comments.
[[nodiscard]] const char* diagCodeName(DiagCode code);

/// Inverse of diagCodeName. Returns false for unknown names.
[[nodiscard]] bool diagCodeFromName(const std::string& name, DiagCode* out);

/// Every enumerator, in table order — the golden corpus must exercise
/// all of them.
[[nodiscard]] std::span<const DiagCode> allDiagCodes();

/// True for the L-series codes emitted by the lint passes.
[[nodiscard]] bool isLintCode(DiagCode code);

struct Diagnostic {
  Severity severity = Severity::kError;
  DiagCode code = DiagCode::kUnexpectedToken;
  Span span;
  std::string message;
  std::string note;  ///< Optional secondary line; empty if absent.
};

/// "file.gta:3:7: error[P004]: unknown clock 't'" (+ "  note: ..." on a
/// second line when present). Omits the position for zero spans and the
/// file prefix when `file` is empty.
[[nodiscard]] std::string toString(const Diagnostic& d,
                                   const std::string& file = {});

/// All diagnostics, one per line (notes indented underneath).
[[nodiscard]] std::string renderDiagnostics(const std::vector<Diagnostic>& ds,
                                            const std::string& file = {});

[[nodiscard]] size_t countErrors(const std::vector<Diagnostic>& ds);
[[nodiscard]] size_t countWarnings(const std::vector<Diagnostic>& ds);

/// Stable sort by (line, col) so parser and lint output interleave in
/// source order.
void sortBySource(std::vector<Diagnostic>& ds);

}  // namespace ta
