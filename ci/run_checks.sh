#!/usr/bin/env bash
# One-command CI: tier-1 tests, the randomized fuzz suites, and a
# ThreadSanitizer pass over the multi-threaded engine tests.
#
#   ci/run_checks.sh          # everything
#   ci/run_checks.sh --fast   # skip the sanitizer builds (tier-1 + fuzz)
#
# Stages:
#   1. tier-1   — release build, full ctest (the ROADMAP gate);
#                 the fuzz-labelled suites are part of tier-1 and run
#                 here too, so this stage alone matches the seed gate.
#   2. fuzz     — ctest -L fuzz: the randomized differential and
#                 property suites, isolated so a CI trajectory can
#                 re-run just them (differential engine comparison,
#                 DBM/minimal-form oracles, plant properties,
#                 bit-state hashing, parser mutation/soup fuzzing).
#   2b. frontend— the .gta compiler pipeline by name: the golden
#                 diagnostic corpus (including the coverage gate that
#                 every DiagCode enumerator is exercised by at least
#                 one corpus file), span/rendering units, the
#                 print->parse->print fixpoint, and lint soundness.
#   3. tsan     — fresh -DSANITIZE=thread build, ctest -L parallel:
#                 every multi-threaded explorer (parallel BFS,
#                 work-stealing DFS, portfolio) under ThreadSanitizer.
#   4. asan     — fresh -DSANITIZE=address build (ASan + UBSan),
#                 ctest -L fuzz plus the static LU-bound analysis and
#                 differential suites by name: the randomized zone
#                 workloads drive the extrapolation operators and the
#                 bounds fixpoint through their edge cases under
#                 memory/UB checking.
#   5. store /  — the storage + kernel stage: the perf-smoke gates that
#      kernels    certify the flat passed store (covered() throughput
#                 vs the legacy map layout, guided-workload bytes vs
#                 the pre-interning baseline), the SIMD roofline gate
#                 (vectorized close/inclusion/batch-scan >= 1.5x the
#                 forced-scalar baseline), the best-first optimizer
#                 gate (match-or-beat binary search in <= 0.8x its
#                 wall time), plus the store unit suites and the
#                 priced-zone / best-first suites re-run under the
#                 ASan and TSan builds from stages 3-4, and the
#                 pre-exploration optimizer gate (identical opt-0/opt-2
#                 verdicts, >= 10% statesExplored cut somewhere) with
#                 its pass suite under ASan.
#   6. robust   — the fault-injection stage: the Monte-Carlo campaign
#                 smoke gate (100% success on a nominal channel, >= 95%
#                 at 5% i.i.d. loss, seed-reproducible trials), the RCX
#                 VM / adversarial-channel / plant-sim suites under the
#                 ASan build, and the parallel campaign runner under
#                 the TSan build.
#   7. replan   — the closed-loop rescheduling stage: the replan
#                 campaign smoke gate (snapshot -> lift -> budgeted
#                 repair search must beat hardened codegen alone on the
#                 burst-loss and crash-restart cells, reproducibly per
#                 seed), a provenance check on the emitted
#                 BENCH_replan_campaign.json (git_rev / hostname /
#                 timestamp must be present and non-empty), and the
#                 snapshot / state-lifting / resume-round-trip suites
#                 plus the nonzero-clock-init engine suite under the
#                 ASan build.
set -euo pipefail

cd "$(dirname "$0")/.."

fast=0
for arg in "$@"; do
  case "$arg" in
    --fast) fast=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

jobs=$(nproc 2>/dev/null || echo 2)

echo "== stage 1: tier-1 (release build + full ctest) =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

echo "== stage 2: fuzz label (randomized suites) =="
ctest --test-dir build --output-on-failure -L fuzz -j "$jobs"

echo "== stage 2b: frontend golden-diagnostic suite (release) =="
# Also part of the stage-1 full ctest; re-run by name so a frontend
# regression is reported as its own stage. GoldenDiag.CoverageAllCodes
# is the gate that every DiagCode enumerator appears in >= 1 corpus
# file; the ParserFuzz suites carry the fuzz label and additionally run
# under ASan+UBSan in stage 4.
ctest --test-dir build --output-on-failure -j "$jobs" \
  -R 'GoldenDiag|LexerSpans|DiagnosticSpans|ErrorCap|Rendering|LegacyShim|RoundTrip\.|LintSoundness'

echo "== stage 5a: storage-engine perf gates (release) =="
# Also part of the stage-1 full ctest; re-run by name so a storage
# regression is reported as its own stage.
ctest --test-dir build --output-on-failure \
  -R 'store_micro_smoke|ablation_store_smoke'

echo "== stage 5b: SIMD roofline + best-first optimizer gates (release) =="
# Also part of the stage-1 full ctest; re-run by name so a kernel or
# optimizer regression is reported as its own stage. The roofline gate
# self-skips on hardware without a vector path.
ctest --test-dir build --output-on-failure \
  -R 'dbm_micro_simd_smoke|bestfirst_opt_smoke'

echo "== stage 5e: pre-exploration optimizer gate (release) =="
# Also part of the stage-1 full ctest; re-run by name so an optimizer
# regression is reported as its own stage. The gate requires identical
# verdicts at opt-level 0 and 2 on every workload and a >= 10%
# statesExplored reduction on at least one (the instrumented-Fischer
# dead-store workload).
ctest --test-dir build --output-on-failure -R 'ir_opt_smoke'

echo "== stage 6a: fault-campaign robustness gate (release) =="
# Also part of the stage-1 full ctest; re-run by name so a robustness
# regression is reported as its own stage.
ctest --test-dir build --output-on-failure -R 'fault_campaign_smoke'

echo "== stage 7a: closed-loop replanning gate (release) =="
# Also part of the stage-1 full ctest; re-run by name so a replanning
# regression is reported as its own stage. The gate writes
# BENCH_replan_campaign.json at the repo root; CI trajectories diff the
# outcome fields across runs, so the file must say where it came from.
ctest --test-dir build --output-on-failure -R 'replan_campaign_smoke'
for field in git_rev hostname timestamp; do
  if ! grep -Eq "\"${field}\": \"[^\"]+\"" BENCH_replan_campaign.json; then
    echo "BENCH_replan_campaign.json: provenance field '${field}'" \
         "missing or empty" >&2
    exit 1
  fi
done

if [[ "$fast" == 1 ]]; then
  echo "== stages 3-7b: sanitizers skipped (--fast) =="
  exit 0
fi

echo "== stage 3: ThreadSanitizer (parallel label + differential) =="
cmake -B build-tsan -S . -DSANITIZE=thread >/dev/null
cmake --build build-tsan -j "$jobs"
ctest --test-dir build-tsan --output-on-failure -L parallel -j "$jobs"
# The differential suite is labelled fuzz (one label per binary — see
# tests/CMakeLists.txt) but exercises every parallel configuration, so
# the TSan pass picks it up by name.
ctest --test-dir build-tsan --output-on-failure -R 'Differential' -j "$jobs"

echo "== stage 4: AddressSanitizer + UBSan (fuzz label + analysis suites) =="
cmake -B build-asan -S . -DSANITIZE=address >/dev/null
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -L fuzz -j "$jobs"
# The optimizer pass suite by name: IR lowering, the pass pipeline's
# expression-pool rewrites, and the digitized-oracle explorations are
# pointer-heavy and belong under memory/UB checking. (The differential
# suite's opt-level configs already run under TSan in stage 3.)
ctest --test-dir build-asan --output-on-failure -R 'BoundsAnalysis|OptPasses' \
  -j "$jobs"

echo "== stage 5c: storage engine under the sanitizer builds =="
# The interner's lock-free reads and the flat store's probe loops under
# TSan (store_parallel_test is in -L parallel already; the sequential
# store/interner units are picked up by name), and the zone-arena
# buffer arithmetic under ASan/UBSan (merge_oracle_test is in -L fuzz).
ctest --test-dir build-tsan --output-on-failure -R 'Store|Interner' -j "$jobs"
ctest --test-dir build-asan --output-on-failure -R 'Store|Interner|MergeOracle' \
  -j "$jobs"

echo "== stage 5d: priced zones + best-first under the sanitizer builds =="
# The SoA batch's lane arithmetic, the priced-zone cost adjustments,
# and the best-first engine's node recycling under ASan/UBSan (the
# ZoneBatch / PricedOracle / HeuristicProperty fuzz suites are in the
# stage-4 label run already; BestFirst and the hash-invalidation
# regressions are picked up by name), and the forced-dispatch kernels
# under TSan — the dispatch switch and kernel-hit counters are shared
# state every search thread touches.
ctest --test-dir build-asan --output-on-failure -R 'BestFirst|DbmHash' \
  -j "$jobs"
ctest --test-dir build-tsan --output-on-failure \
  -R 'ZoneBatch|PricedOracle|BestFirst|HeuristicProperty' -j "$jobs"

echo "== stage 6b: RCX execution-layer suites under ASan/UBSan =="
# The VM (new ops, watchdog halt), the adversarial channel's split
# streams, the plant physics, and whole simulated trials under
# memory/UB checking. (FaultInjection's model-level hazard searches are
# wall-clock-bounded and engine-bound, so they stay in stages 1-2.)
ctest --test-dir build-asan --output-on-failure \
  -R 'RcxVm|FaultChannel|FaultSim|PhysicsTest|Lifecycle' -j "$jobs"

echo "== stage 6c: parallel campaign runner under TSan =="
# The campaign fans trials out over a std::thread pool; the smoke grid
# under ThreadSanitizer certifies the worker/result handoff.
./build-tsan/bench/fault_campaign --smoke --trials 12

echo "== stage 7b: replanning suites under ASan/UBSan =="
# Snapshot capture/classification, the concrete -> symbolic state lift,
# the crash-restart resume round trips, and the nonzero-clock-init
# engine semantics the lift depends on, all under memory/UB checking.
# (The Lift\. anchor keeps the RCX Lifecycle suite out of this stage.)
ctest --test-dir build-asan --output-on-failure \
  -R 'SnapshotCapture|SnapshotClassify|Lift\.|RelaxedConfig|ResumeRoundTrip|InitialClocks' \
  -j "$jobs"

echo "all checks passed"
