// Micro-benchmarks of the storage engine: intern-hit throughput on the
// hash-consing arena, covered() probe throughput of the flat
// open-addressing passed store against a PR 3-style
// unordered_map-of-zone-vectors baseline (rebuilt locally so the
// comparison survives the old store's removal), and the exact
// convex-union merge rate on an interval-chain workload.
//
// `store_micro --smoke` runs only the covered() comparison and fails
// (exit != 0) when the flat store does not at least match the legacy
// layout — the perf gate wired into ctest under the perf-smoke label.
//
// stdout: human-readable table; BENCH_store_micro.json gets the rows.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <unordered_map>
#include <vector>

#include "bench_util.hpp"
#include "engine/interner.hpp"
#include "engine/passed_store.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

engine::DiscreteState makeState(int k) {
  engine::DiscreteState d;
  d.locs = {static_cast<ta::LocId>(k % 11), static_cast<ta::LocId>(k % 5)};
  d.vars = {k, k * 7 + 1, k % 3};
  return d;
}

/// Zone `slot` of a bucket: clock 1 in [3*slot, 3*slot + 2], pairwise
/// incomparable across slots so subsumption never collapses the bucket.
dbm::Dbm slotZone(uint32_t dim, int slot, int width = 2) {
  dbm::Dbm z = dbm::Dbm::unconstrained(dim);
  z.constrain(0, 1, dbm::boundWeak(-3 * slot));
  z.constrain(1, 0, dbm::boundWeak(3 * slot + width));
  return z;
}

// --------------------------------------------------------------------
// PR 3-style baseline: discrete keys in an unordered_map, each bucket a
// vector of individually allocated DBMs — the node-based layout the
// flat store replaced.
// --------------------------------------------------------------------

struct DiscreteHash {
  size_t operator()(const engine::DiscreteState& d) const noexcept {
    return d.hash();
  }
};

class LegacyMapStore {
 public:
  [[nodiscard]] bool covered(const engine::DiscreteState& d,
                             const dbm::Dbm& z) const {
    const auto it = map_.find(d);
    if (it == map_.end()) return false;
    for (const dbm::Dbm& s : it->second) {
      if (s.includes(z)) return true;
    }
    return false;
  }

  void insert(const engine::DiscreteState& d, const dbm::Dbm& z) {
    auto& zones = map_[d];
    for (size_t k = 0; k < zones.size();) {
      if (z.includes(zones[k])) {
        zones[k] = std::move(zones.back());
        zones.pop_back();
      } else {
        ++k;
      }
    }
    zones.push_back(z);
  }

 private:
  std::unordered_map<engine::DiscreteState, std::vector<dbm::Dbm>,
                     DiscreteHash>
      map_;
};

// --------------------------------------------------------------------
// Kernels
// --------------------------------------------------------------------

struct CoveredResult {
  double flatMs = 0.0;
  double legacyMs = 0.0;
  size_t queries = 0;
  size_t hitsFlat = 0;
  size_t hitsLegacy = 0;
};

/// Fill both layouts with `nStates` buckets of `zonesPer` incomparable
/// zones of dimension `dim`, then time an identical mixed hit/miss
/// covered() query stream over each (best of three passes).
CoveredResult coveredKernel(int nStates, int zonesPer, uint32_t dim,
                            int queryRounds) {
  engine::StateInterner interner(true);
  engine::Options opts;
  engine::PassedStore flat(opts, interner);
  LegacyMapStore legacy;
  for (int k = 0; k < nStates; ++k) {
    const engine::DiscreteState d = makeState(k);
    const uint32_t id = interner.intern(d);
    for (int s = 0; s < zonesPer; ++s) {
      flat.insert(id, slotZone(dim, s));
      legacy.insert(d, slotZone(dim, s));
    }
  }

  // Query stream: covered probes (slot sub-intervals), uncovered probes
  // (straddling two slots) and unknown discrete states, shuffled.
  struct Query {
    engine::DiscreteState d;
    dbm::Dbm z;
  };
  std::vector<Query> queries;
  std::mt19937_64 rng(42);
  std::uniform_int_distribution<int> state(0, nStates - 1);
  std::uniform_int_distribution<int> slot(0, zonesPer - 1);
  std::uniform_int_distribution<int> kind(0, 3);
  const int nQueries = nStates * queryRounds;
  queries.reserve(static_cast<size_t>(nQueries));
  for (int q = 0; q < nQueries; ++q) {
    const int k = state(rng);
    const int s = slot(rng);
    switch (kind(rng)) {
      case 0:  // hit: strictly inside one stored slot
        queries.push_back({makeState(k), slotZone(dim, s, 1)});
        break;
      case 1:  // miss: spans the gap between two slots
        queries.push_back({makeState(k), slotZone(dim, s, 4)});
        break;
      case 2:  // miss: discrete state never inserted
        queries.push_back({makeState(nStates + k), slotZone(dim, s, 1)});
        break;
      default:  // hit: exactly a stored zone
        queries.push_back({makeState(k), slotZone(dim, s)});
        break;
    }
  }

  CoveredResult out;
  out.queries = static_cast<size_t>(nQueries);
  out.flatMs = 1e30;
  out.legacyMs = 1e30;
  for (int pass = 0; pass < 3; ++pass) {
    size_t hits = 0;
    Clock::time_point t0 = Clock::now();
    for (const Query& q : queries) {
      hits += flat.covered(q.d, q.z) ? 1 : 0;
    }
    out.flatMs = std::min(out.flatMs, msSince(t0));
    out.hitsFlat = hits;

    hits = 0;
    t0 = Clock::now();
    for (const Query& q : queries) {
      hits += legacy.covered(q.d, q.z) ? 1 : 0;
    }
    out.legacyMs = std::min(out.legacyMs, msSince(t0));
    out.hitsLegacy = hits;
  }
  return out;
}

struct InternResult {
  double missMs = 0.0;  ///< first pass: all inserts
  double hitMs = 0.0;   ///< re-intern passes: all hits
  size_t states = 0;
  size_t reinterns = 0;
};

InternResult internKernel(int nStates, int hitPasses) {
  engine::StateInterner interner(true);
  InternResult out;
  out.states = static_cast<size_t>(nStates);
  Clock::time_point t0 = Clock::now();
  for (int k = 0; k < nStates; ++k) {
    (void)interner.intern(makeState(k));
  }
  out.missMs = msSince(t0);

  t0 = Clock::now();
  for (int pass = 0; pass < hitPasses; ++pass) {
    for (int k = 0; k < nStates; ++k) {
      (void)interner.intern(makeState(k));
    }
  }
  out.hitMs = msSince(t0);
  out.reinterns = static_cast<size_t>(nStates) * hitPasses;
  return out;
}

struct MergeResult {
  double ms = 0.0;
  size_t inserts = 0;
  size_t merges = 0;
  size_t finalZones = 0;
};

/// Insert chains of adjacent intervals under mergeZones: every insert
/// after a bucket's first is exactly mergeable, so the merge rate of a
/// healthy implementation approaches 1 merge per insert.
MergeResult mergeKernel(int nStates, int chain, uint32_t dim) {
  engine::StateInterner interner(true);
  engine::Options opts;
  opts.mergeZones = true;
  engine::PassedStore store(opts, interner);
  MergeResult out;
  const Clock::time_point t0 = Clock::now();
  for (int k = 0; k < nStates; ++k) {
    const uint32_t id = interner.intern(makeState(k));
    for (int s = 0; s < chain; ++s) {
      // [s, s+1]: abuts the previously merged [0, s] prefix.
      dbm::Dbm z = dbm::Dbm::unconstrained(dim);
      z.constrain(0, 1, dbm::boundWeak(-s));
      z.constrain(1, 0, dbm::boundWeak(s + 1));
      store.insert(id, z);
      ++out.inserts;
    }
  }
  out.ms = msSince(t0);
  out.merges = store.merges();
  out.finalZones = store.states();
  return out;
}

int runSmoke() {
  // Modest size so the gate is quick; dim 64 ~ a mid-size plant model.
  const CoveredResult r = coveredKernel(2000, 8, 64, 20);
  const double ratio = r.legacyMs / r.flatMs;
  std::printf("covered(): flat %.1f ms, legacy map %.1f ms (%zu queries, "
              "flat %.2fx)\n",
              r.flatMs, r.legacyMs, r.queries, ratio);
  if (r.hitsFlat != r.hitsLegacy) {
    std::printf("FAIL: stores disagree (%zu vs %zu hits)\n", r.hitsFlat,
                r.hitsLegacy);
    return 1;
  }
  // The flat layout must at least match the node-based map; the margin
  // absorbs scheduler noise on loaded CI hosts, not a real regression.
  if (ratio < 0.95) {
    std::printf("FAIL: flat covered() slower than the legacy layout "
                "(%.2fx, need >= 0.95x)\n", ratio);
    return 1;
  }
  std::printf("PASS: flat covered() at %.2fx the legacy layout\n", ratio);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return runSmoke();

  const bool quick = benchutil::quick();
  benchutil::Report report("store_micro");

  {
    const int n = quick ? 20000 : 100000;
    const InternResult r = internKernel(n, 5);
    std::printf("intern: %d states, miss pass %.1f ms (%.0f k/s), "
                "%zu re-interns %.1f ms (%.0f k/s)\n",
                n, r.missMs, n / r.missMs, r.reinterns, r.hitMs,
                r.reinterns / r.hitMs);
    report.add("intern-miss-" + std::to_string(n), r.missMs, 0, r.states);
    report.add("intern-hit-x5-" + std::to_string(n), r.hitMs, 0, r.states);
  }
  {
    const int n = quick ? 2000 : 8000;
    const int rounds = quick ? 20 : 40;
    const CoveredResult r = coveredKernel(n, 8, 64, rounds);
    std::printf("covered(): %zu queries over %d buckets x 8 zones (dim 64)\n"
                "  flat store  %8.1f ms (%.0f k/s, %zu hits)\n"
                "  legacy map  %8.1f ms (%.0f k/s, %zu hits)\n",
                r.queries, n, r.flatMs, r.queries / r.flatMs, r.hitsFlat,
                r.legacyMs, r.queries / r.legacyMs, r.hitsLegacy);
    report.add("covered-flat-" + std::to_string(n) + "x8", r.flatMs, 0,
               static_cast<size_t>(n) * 8);
    report.add("covered-legacy-" + std::to_string(n) + "x8", r.legacyMs, 0,
               static_cast<size_t>(n) * 8);
  }
  {
    const int n = quick ? 2000 : 10000;
    const MergeResult r = mergeKernel(n, 16, 16);
    std::printf("merge: %zu inserts -> %zu merges (%.1f%%), %zu zones kept, "
                "%.1f ms\n",
                r.inserts, r.merges,
                100.0 * static_cast<double>(r.merges) /
                    static_cast<double>(r.inserts),
                r.finalZones, r.ms);
    report.add("merge-chain-" + std::to_string(n) + "x16", r.ms, 0,
               r.finalZones);
  }

  report.write();
  return 0;
}
