// Reproduction of the §5 scaling claim: schedules for as many as 60
// batches (125 timed automata, 183 clocks in the paper; 2N+4 automata
// and 3N+3 clocks here — 124 / 183 at N = 60).
//
// Prints the growth of search effort with the number of batches for the
// fully guided model under depth-first search.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

int main() {
  const std::vector<int> sizes = benchutil::quick()
                                     ? std::vector<int>{5, 10, 20}
                                     : std::vector<int>{5, 10, 20, 30, 40,
                                                        50, 60};
  std::printf("Scaling of guided scheduling (All Guides, DFS):\n\n");
  std::printf("%8s %10s %8s %10s %10s %10s %9s\n", "batches", "automata",
              "clocks", "explored", "stored", "seconds", "peakMB");
  benchutil::Report report("scaling_batches");
  for (const int n : sizes) {
    plant::PlantConfig cfg;
    cfg.order = plant::standardOrder(n);
    const auto p = plant::buildPlant(cfg);
    engine::Options opts = benchutil::searchOptions("DFS", 300.0, 8192);
    engine::Reachability checker(p->sys, opts);
    const engine::Result res = checker.run(p->goal);
    std::printf("%8d %10zu %8u %10zu %10zu %10.2f %9.0f\n", n,
                p->numAutomata(), p->numClocks(), res.stats.statesExplored,
                res.stats.statesStored, res.stats.seconds,
                res.stats.peakMegabytes());
    std::fflush(stdout);
    if (!res.reachable) {
      std::printf("  (no schedule within budget — stopping)\n");
      break;
    }
    report.add("allguides-" + std::to_string(n) + "batch",
               res.stats.seconds * 1000.0, res.stats.peakBytes,
               res.stats.statesStored);
  }
  report.write();
  return 0;
}
