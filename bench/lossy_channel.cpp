// §6-flavoured benchmark: execute one synthesized control program in
// the simulated plant under increasing message-loss rates, reporting
// retries and whether the run still satisfies the physical invariants.
// (The paper's motivation for the ack-retry code segments: "the
// communication between the RCX bricks is unreliable and slow".)
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "engine/trace.hpp"
#include "plant/plant.hpp"
#include "rcx/plant_sim.hpp"
#include "synthesis/rcx_codegen.hpp"
#include "synthesis/schedule.hpp"

int main() {
  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(3);
  const auto p = plant::buildPlant(cfg);

  engine::Options opts;
  opts.order = engine::SearchOrder::kDfs;
  opts.dfsReverse = true;
  opts.maxSeconds = 120.0;
  engine::Reachability checker(p->sys, opts);
  const engine::Result res = checker.run(p->goal);
  if (!res.reachable) {
    std::puts("no schedule found");
    return 1;
  }
  std::string err;
  const auto ct = engine::concretize(p->sys, res.trace, &err);
  if (!ct.has_value()) {
    std::printf("concretization failed: %s\n", err.c_str());
    return 1;
  }
  const synthesis::Schedule sched = synthesis::project(p->sys, *ct);
  synthesis::CodegenOptions cg;
  cg.ticksPerTimeUnit = 1000;
  cg.resendAfterPolls = 5;
  const synthesis::RcxProgram prog = synthesis::synthesize(sched, cg);

  std::printf("Message-loss sweep (3 batches, %zu commands, ack-retry "
              "programs):\n\n",
              prog.commands.size());
  std::printf("%8s %10s %8s %8s %8s %12s %6s\n", "loss", "sends", "cmdLost",
              "ackLost", "dupes", "ticks", "ok");
  benchutil::Report report("lossy_channel");
  report.add("search-3batch", res.stats.seconds * 1000.0,
             res.stats.peakBytes, res.stats.statesStored);
  for (const double loss : {0.0, 0.01, 0.05, 0.10, 0.20, 0.35}) {
    rcx::SimOptions sim;
    sim.messageLossProb = loss;
    sim.slackTicks = 8000;
    sim.seed = 1234;
    const auto t0 = std::chrono::steady_clock::now();
    const rcx::SimResult out = rcx::runProgram(prog, cfg, 1000, sim);
    const double simMs = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
    {
      char w[32];
      std::snprintf(w, sizeof w, "sim-loss-%.2f", loss);
      report.add(w, simMs, 0, 0);
    }
    std::printf("%8.2f %10lld %8lld %8lld %8lld %12lld %6s\n", loss,
                static_cast<long long>(out.commandsSent),
                static_cast<long long>(out.commandsLost),
                static_cast<long long>(out.acksLost),
                static_cast<long long>(out.duplicatesIgnored),
                static_cast<long long>(out.ticks), out.ok() ? "yes" : "NO");
    if (!out.ok()) {
      for (size_t e = 0; e < out.errors.size() && e < 3; ++e) {
        std::printf("         ! tick %lld: %s\n",
                    static_cast<long long>(out.errors[e].tick),
                    out.errors[e].what.c_str());
      }
    }
    std::fflush(stdout);
  }
  std::printf(
      "\nRetries keep the plant correct under moderate loss; heavy loss "
      "defers\ncommands long enough to break the timing the schedule "
      "guarantees.\n");
  report.write();
  return 0;
}
