// Thread-scaling of the parallel BFS engine on the paper's hardest
// tractable workload shape: No-Guides batch-plant reachability.
//
// Exhausting the unguided state space is exactly what Table 1 shows to
// be hopeless, so the workload is budget-bounded: every run explores
// the same maxStates budget of the 5-batch No-Guides model and stops on
// the states cutoff — fixed work, honest wall-clock comparison, and the
// reachability verdict must be identical across thread counts.
//
// stdout: one JSON object per line,
//   {"workload": ..., "threads": N, "seconds": S,
//    "statesExplored": E, "peakBytes": B}
// (machine-readable for the bench trajectory); the human-readable table
// goes to stderr. Exit code != 0 on verdict mismatch or — in --quick
// mode, the `perf-smoke` ctest label — gross scaling regression.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"

namespace {

struct Run {
  size_t threads;
  bool reachable;
  engine::Cutoff cutoff;
  double seconds;
  size_t explored;
  size_t peakBytes;
};

Run runWorkload(int batches, size_t maxStates, size_t threads) {
  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(batches);
  cfg.guides = plant::GuideLevel::kNone;
  const auto p = plant::buildPlant(cfg);

  engine::Options o;
  o.order = engine::SearchOrder::kBfs;
  o.threads = threads;
  o.maxStates = maxStates;
  o.maxSeconds = 900.0;
  engine::Reachability checker(p->sys, o);
  const engine::Result res = checker.run(p->goal);
  return Run{threads,          res.reachable,       res.stats.cutoff,
             res.stats.seconds, res.stats.statesExplored,
             res.stats.peakBytes};
}

}  // namespace

int main(int argc, char** argv) {
  bool quickMode = benchutil::quick();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quickMode = true;
  }
  const int batches = quickMode ? 3 : 5;
  const size_t maxStates = quickMode ? 30000 : 150000;
  const std::string workload =
      "noguides-" + std::to_string(batches) + "batch-" +
      std::to_string(maxStates / 1000) + "k";

  std::vector<size_t> threadCounts{1, 2, 4};
  if (!quickMode && std::thread::hardware_concurrency() >= 8) {
    threadCounts.push_back(8);
  }
  if (quickMode) threadCounts = {1, 4};

  std::fprintf(stderr, "parallel_scaling: %s\n\n", workload.c_str());
  std::fprintf(stderr, "%8s %10s %10s %12s %10s %9s\n", "threads", "seconds",
               "speedup", "explored", "peakMB", "verdict");

  int rc = 0;
  double base = 0.0;
  bool baseReachable = false;
  double speedup4 = 0.0;
  benchutil::Report report("parallel_scaling");
  for (const size_t t : threadCounts) {
    const Run r = runWorkload(batches, maxStates, t);
    report.add(workload + "-t" + std::to_string(t), r.seconds * 1000.0,
               r.peakBytes, r.explored);
    if (t == 1) {
      base = r.seconds;
      baseReachable = r.reachable;
    } else if (r.reachable != baseReachable) {
      std::fprintf(stderr, "VERDICT MISMATCH at %zu threads\n", t);
      rc = 1;
    }
    const double speedup = (t == 1 || r.seconds <= 0.0)
                               ? 1.0
                               : base / r.seconds;
    if (t == 4) speedup4 = speedup;
    std::fprintf(stderr, "%8zu %10.2f %9.2fx %12zu %10.1f %9s\n", t,
                 r.seconds, speedup, r.explored,
                 static_cast<double>(r.peakBytes) / (1024.0 * 1024.0),
                 r.reachable ? "reach" : "unreach");
    std::printf(
        "{\"workload\": \"%s\", \"threads\": %zu, \"seconds\": %.3f, "
        "\"statesExplored\": %zu, \"peakBytes\": %zu}\n",
        workload.c_str(), t, r.seconds, r.explored, r.peakBytes);
    std::fflush(stdout);
  }
  // Smoke gate: 4 workers must beat 1 by a clear margin — 2x full,
  // 1.3x quick (the tiny workload cannot amortize barriers as well).
  // The gate presumes hardware to run 4 workers on; on hosts with
  // fewer cores it degrades proportionally, down to a bounded-overhead
  // check (the 4-thread run may not collapse) on a single core, where
  // wall-clock speedup is physically impossible.
  const double hw = static_cast<double>(
      std::max(1u, std::thread::hardware_concurrency()));
  const double parallelism = std::min(4.0, hw);
  const double required =
      std::max(0.75, (quickMode ? 0.325 : 0.5) * parallelism);
  if (hw < 4.0) {
    std::fprintf(stderr,
                 "note: only %.0f hardware thread(s); scaling gate "
                 "reduced to %.2fx\n",
                 hw, required);
  }
  if (speedup4 < required) {
    std::fprintf(stderr, "scaling regression: %.2fx at 4 threads (< %.1fx)\n",
                 speedup4, required);
    rc = 1;
  }
  report.write();
  return rc;
}
