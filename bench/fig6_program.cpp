// Reproduction of Figure 6: an excerpt of a synthesized RCX control
// program — each schedule line becomes an in-lined send + ack-retry
// code segment, delays become PB.Wait instructions.
#include <cstdio>
#include <iostream>
#include <sstream>

#include "bench_util.hpp"
#include "engine/trace.hpp"
#include "plant/plant.hpp"
#include "synthesis/rcx_codegen.hpp"
#include "synthesis/schedule.hpp"

int main() {
  plant::PlantConfig cfg;
  cfg.order = {plant::qualityAB()};
  const auto p = plant::buildPlant(cfg);

  engine::Options opts;
  opts.order = engine::SearchOrder::kDfs;
  opts.dfsReverse = true;
  opts.maxSeconds = 60.0;
  engine::Reachability checker(p->sys, opts);
  const engine::Result res = checker.run(p->goal);
  if (!res.reachable) {
    std::puts("no schedule found");
    return 1;
  }
  std::string err;
  const auto ct = engine::concretize(p->sys, res.trace, &err);
  if (!ct.has_value()) {
    std::cout << "concretization failed: " << err << "\n";
    return 1;
  }
  const synthesis::Schedule sched = synthesis::project(p->sys, *ct);
  const synthesis::RcxProgram prog = synthesis::synthesize(sched);

  std::printf("Figure 6: part of a synthesized control program "
              "(%zu instructions for %zu commands)\n\n",
              prog.code.size(), prog.commands.size());
  std::istringstream text(prog.toText());
  std::string line;
  int shown = 0;
  while (std::getline(text, line) && shown < 40) {
    std::printf("  %s\n", line.c_str());
    ++shown;
  }
  std::printf("  ...\n");
  benchutil::Report report("fig6_program");
  report.add("codegen-qualityAB", res.stats.seconds * 1000.0,
             res.stats.peakBytes, res.stats.statesStored);
  report.write();
  return 0;
}
