// Monte-Carlo closed-loop replanning campaign: the same synthesized
// schedule is executed under fault profiles harsh enough to defeat the
// hardened retry layer (long bursty outages, local-controller crashes
// that out-last the watchdog budget), once with hardened codegen alone
// and once with the full closed loop (replan/controller.hpp): fatal
// deviation -> quiesced snapshot -> state lifting -> budgeted repair
// search -> splice.
//
// Per cell the campaign reports the trial success rate, how many
// replans the closed loop spent, how many runs ended in a safe stop,
// and the wall-clock replanning latency P50/P99; everything lands in
// BENCH_replan_campaign.json with provenance fields.
//
// Gate (--smoke and full runs alike): on the burst-loss and the
// crash-restart cells the replanning arm must succeed strictly more
// often than hardened codegen alone, and re-running a replanning cell
// with the same seeds must reproduce identical per-trial outcomes
// (latencies excluded — budgets are in explored states, not seconds).
//
// Usage: replan_campaign [--smoke] [--trials N] [--seed S] [--batches B]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "engine/trace.hpp"
#include "plant/plant.hpp"
#include "rcx/fault.hpp"
#include "rcx/plant_sim.hpp"
#include "replan/controller.hpp"
#include "synthesis/rcx_codegen.hpp"
#include "synthesis/schedule.hpp"

namespace {

constexpr int64_t kSlackTicks = 8000;
constexpr int32_t kTpu = 1000;
constexpr int64_t kReplanChargeTicks = 2000;

struct TrialOutcome {
  bool ok = false;
  bool safeStopped = false;
  int replans = 0;
  int maxLadderLevel = -1;
  int64_t ticks = 0;
  rcx::DeviationKind firstDeviation = rcx::DeviationKind::kNone;
  std::string detail;  ///< safe-stop reason / segment trail (--verbose)
  /// Wall-clock replan latencies (seconds). Reported, never compared:
  /// the search budgets are deterministic (explored states), the wall
  /// time is not.
  std::vector<double> latencies;
};

struct Cell {
  std::string profile;  ///< "burst" or "crash"
  std::string arm;      ///< "hardened" (open loop) or "replan"
  rcx::FaultPlan plan;
  std::vector<TrialOutcome> trials;
};

/// Fault profiles sized to defeat the hardened retry layer outright:
/// the watchdog budget at this slack is 3200 polls = 64k ticks of
/// silence, so both profiles manufacture outages around or past it.
rcx::FaultPlan makePlan(const std::string& profile) {
  if (profile == "burst") {
    // Total outages with an expected length of ~50 carried messages.
    // Under the capped exponential backoff most outages out-last the
    // watchdog; the rest blow the plant's timing slack instead.
    rcx::FaultPlan f = rcx::FaultPlan::iidLoss(0.02);
    f.burst.pGoodToBad = 0.02;
    f.burst.pBadToGood = 0.02;
    f.burst.lossGood = 0.0;
    f.burst.lossBad = 1.0;
    return f;
  }
  // "crash": ~1.5 expected crashes per run, each taking the unit down
  // for longer than the watchdog budget — the open loop must halt.
  rcx::FaultPlan f = rcx::FaultPlan::iidLoss(0.01);
  f.crash.crashPerTick = 2e-6;
  f.crash.downTicks = 72'000;
  return f;
}

TrialOutcome runOpenLoop(const synthesis::RcxProgram& prog,
                         const plant::PlantConfig& cfg,
                         const rcx::FaultPlan& plan, uint64_t seed) {
  rcx::SimOptions sim;
  sim.messageLossProb = 0.0;
  sim.faults = plan;
  sim.seed = seed;
  sim.slackTicks = kSlackTicks;
  const rcx::SimResult out = rcx::runProgram(prog, cfg, kTpu, sim);
  TrialOutcome t;
  t.ok = out.ok();
  t.ticks = out.ticks;
  t.firstDeviation = out.deviation;
  return t;
}

TrialOutcome runClosedLoop(const synthesis::Schedule& sched,
                           const plant::PlantConfig& cfg,
                           const synthesis::CodegenOptions& cg,
                           const rcx::FaultPlan& plan, uint64_t seed) {
  replan::ControllerOptions opts;
  opts.sim.messageLossProb = 0.0;
  opts.sim.faults = plan;
  opts.sim.seed = seed;
  opts.sim.slackTicks = kSlackTicks;
  opts.codegen = cg;
  opts.ticksPerTimeUnit = kTpu;
  // Bursty channels can knock over several consecutive repair segments;
  // each replan is a few ms of search, so the budget is generous.
  opts.maxReplans = 8;
  opts.replanChargeTicks = kReplanChargeTicks;
  opts.resume.strictMaxStates = 150'000;
  opts.resume.relaxedMaxStates = 400'000;
  const replan::RunReport rep = replan::runWithReplanning(cfg, sched, opts);
  TrialOutcome t;
  t.ok = rep.success;
  t.safeStopped = rep.safeStopped;
  t.replans = rep.replans;
  t.maxLadderLevel = rep.maxLadderLevel;
  t.ticks = rep.finalResult.ticks;
  if (!rep.segments.empty()) t.firstDeviation = rep.segments[0].deviation;
  t.latencies = rep.replanLatencySeconds;
  for (const replan::SegmentInfo& s : rep.segments) {
    t.detail += std::string(rcx::deviationName(s.deviation)) +
                (s.detail.empty() ? "" : "{" + s.detail + "}") +
                (s.replanned ? "->L" + std::to_string(s.ladderLevel) : "") +
                " @" + std::to_string(s.capturedTick) + " ";
  }
  if (rep.safeStopped) t.detail += "| " + rep.safeStopReason;
  return t;
}

void runCampaign(std::vector<Cell>& cells, const synthesis::Schedule& sched,
                 const synthesis::RcxProgram& prog,
                 const plant::PlantConfig& cfg,
                 const synthesis::CodegenOptions& cg, int trials,
                 uint64_t baseSeed) {
  struct Job {
    size_t cell;
    int trial;
  };
  std::vector<Job> jobs;
  for (size_t c = 0; c < cells.size(); ++c) {
    cells[c].trials.assign(static_cast<size_t>(trials), TrialOutcome{});
    for (int t = 0; t < trials; ++t) jobs.push_back(Job{c, t});
  }
  std::atomic<size_t> next{0};
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned nThreads = std::clamp(hw, 1u, 8u);
  std::vector<std::thread> pool;
  pool.reserve(nThreads);
  for (unsigned w = 0; w < nThreads; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const size_t j = next.fetch_add(1, std::memory_order_relaxed);
        if (j >= jobs.size()) return;
        Cell& cell = cells[jobs[j].cell];
        const int t = jobs[j].trial;
        const uint64_t seed = baseSeed + static_cast<uint64_t>(t);
        cell.trials[static_cast<size_t>(t)] =
            cell.arm == "replan"
                ? runClosedLoop(sched, cfg, cg, cell.plan, seed)
                : runOpenLoop(prog, cfg, cell.plan, seed);
      }
    });
  }
  for (std::thread& th : pool) th.join();
}

struct CellSummary {
  int successes = 0;
  double successRate = 0.0;
  int safeStops = 0;
  int replansTotal = 0;
  double p50LatencyMs = -1.0;
  double p99LatencyMs = -1.0;
};

CellSummary summarize(const Cell& cell) {
  CellSummary s;
  std::vector<double> lat;
  for (const TrialOutcome& t : cell.trials) {
    if (t.ok) ++s.successes;
    if (t.safeStopped) ++s.safeStops;
    s.replansTotal += t.replans;
    for (double l : t.latencies) lat.push_back(l * 1000.0);
  }
  const size_t n = cell.trials.size();
  s.successRate = n == 0 ? 0.0 : static_cast<double>(s.successes) /
                                     static_cast<double>(n);
  if (!lat.empty()) {
    std::sort(lat.begin(), lat.end());
    s.p50LatencyMs = lat[lat.size() / 2];
    const size_t i99 = std::min(
        lat.size() - 1,
        static_cast<size_t>(std::ceil(0.99 * static_cast<double>(lat.size()))) -
            1);
    s.p99LatencyMs = lat[i99];
  }
  return s;
}

void writeJson(const std::vector<Cell>& cells, int batches, int trials,
               uint64_t seed, double wallMs) {
  const std::filesystem::path out =
      benchutil::repoRoot() / "BENCH_replan_campaign.json";
  std::ofstream f(out);
  if (!f) return;
  f << "{\n  \"bench\": \"replan_campaign\",\n"
    << "  \"git_rev\": \"" << benchutil::gitRev() << "\",\n"
    << "  \"hostname\": \"" << benchutil::hostName() << "\",\n"
    << "  \"timestamp\": \"" << benchutil::utcTimestamp() << "\",\n"
    << "  \"batches\": " << batches << ",\n"
    << "  \"trials_per_cell\": " << trials << ",\n"
    << "  \"base_seed\": " << seed << ",\n"
    << "  \"replan_charge_ticks\": " << kReplanChargeTicks << ",\n"
    << "  \"wall_ms\": " << wallMs << ",\n  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const CellSummary s = summarize(c);
    f << "    {\"profile\": \"" << c.profile << "\", \"arm\": \"" << c.arm
      << "\", \"trials\": " << c.trials.size()
      << ", \"successes\": " << s.successes
      << ", \"success_rate\": " << s.successRate
      << ", \"safe_stops\": " << s.safeStops
      << ", \"replans_total\": " << s.replansTotal
      << ", \"p50_replan_ms\": " << s.p50LatencyMs
      << ", \"p99_replan_ms\": " << s.p99LatencyMs << "}"
      << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  f << "  ]\n}\n";
  std::printf("\nwrote %s\n", out.string().c_str());
}

const Cell* findCell(const std::vector<Cell>& cells,
                     const std::string& profile, const std::string& arm) {
  for (const Cell& c : cells) {
    if (c.profile == profile && c.arm == arm) return &c;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool verbose = false;
  int trials = -1;
  int batches = -1;
  uint64_t seed = 7000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      trials = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--batches") == 0 && i + 1 < argc) {
      batches = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: replan_campaign [--smoke] [--trials N] "
                           "[--batches B] [--seed S]\n");
      return 2;
    }
  }
  if (batches < 1) batches = 2;
  if (trials < 1) {
    trials = smoke ? 10 : (benchutil::quick() ? 10 : 24);
  }

  const auto wall0 = std::chrono::steady_clock::now();

  // 1. One schedule; both arms execute it with the same hardened
  //    codegen profile (resend policy resolved the satellite way).
  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(batches);
  const auto p = plant::buildPlant(cfg);
  engine::Options eopts;
  eopts.order = engine::SearchOrder::kDfs;
  eopts.dfsReverse = true;
  eopts.maxSeconds = 120.0;
  engine::Reachability checker(p->sys, eopts);
  const engine::Result res = checker.run(p->goal);
  if (!res.reachable) {
    std::fputs("no schedule found\n", stderr);
    return 1;
  }
  std::string err;
  const auto ct = engine::concretize(p->sys, res.trace, &err);
  if (!ct.has_value()) {
    std::fprintf(stderr, "concretization failed: %s\n", err.c_str());
    return 1;
  }
  const synthesis::Schedule sched = synthesis::project(p->sys, *ct);
  const synthesis::CodegenOptions cg = synthesis::CodegenOptions::hardened(
      kTpu, kSlackTicks,
      synthesis::CodegenOptions::resolveResend(synthesis::ResendPolicy::kAuto,
                                               0.02));
  const synthesis::RcxProgram prog = synthesis::synthesize(sched, cg);

  // Fault-free closed-loop sanity run: with a perfect channel the
  // controller must finish in segment one with zero replans.
  {
    const TrialOutcome ideal =
        runClosedLoop(sched, cfg, cg, rcx::FaultPlan{}, seed);
    if (!ideal.ok || ideal.replans != 0) {
      std::fputs("FAIL: fault-free closed-loop baseline deviated\n", stderr);
      return 1;
    }
  }
  std::printf("%d batches, %zu commands, %d trials/cell\n", batches,
              prog.commands.size(), trials);

  // 2. The grid: each profile once per arm, same seeds across arms
  //    (paired comparison).
  std::vector<Cell> cells;
  for (const char* profile : {"burst", "crash"}) {
    for (const char* arm : {"hardened", "replan"}) {
      Cell c;
      c.profile = profile;
      c.arm = arm;
      c.plan = makePlan(profile);
      cells.push_back(std::move(c));
    }
  }
  runCampaign(cells, sched, prog, cfg, cg, trials, seed);

  // 3. Same-seed reproducibility of a full replanning cell: ladder
  //    decisions, replan counts and final ticks must be bit-identical
  //    (the budgets are explored-state counts, so the search outcome is
  //    machine-independent; only wall latencies may differ).
  {
    std::vector<Cell> again;
    Cell c;
    c.profile = "burst";
    c.arm = "replan";
    c.plan = makePlan("burst");
    again.push_back(std::move(c));
    runCampaign(again, sched, prog, cfg, cg, trials, seed);
    const Cell* orig = findCell(cells, "burst", "replan");
    for (int t = 0; t < trials; ++t) {
      const TrialOutcome& a = orig->trials[static_cast<size_t>(t)];
      const TrialOutcome& b = again[0].trials[static_cast<size_t>(t)];
      if (a.ok != b.ok || a.safeStopped != b.safeStopped ||
          a.replans != b.replans || a.maxLadderLevel != b.maxLadderLevel ||
          a.ticks != b.ticks) {
        std::fprintf(stderr,
                     "FAIL: replan trial %d not reproducible at identical "
                     "seed (ticks %lld vs %lld, replans %d vs %d)\n",
                     t, static_cast<long long>(a.ticks),
                     static_cast<long long>(b.ticks), a.replans, b.replans);
        return 1;
      }
    }
    std::puts("reproducibility: identical seeds -> identical closed-loop "
              "outcomes (checked one full cell twice)");
  }

  if (verbose) {
    for (const Cell& c : cells) {
      std::printf("\n-- %s / %s --\n", c.profile.c_str(), c.arm.c_str());
      for (size_t t = 0; t < c.trials.size(); ++t) {
        const TrialOutcome& o = c.trials[t];
        std::printf("  trial %zu: %s replans=%d ladder=%d ticks=%lld %s\n", t,
                    o.ok ? "OK  " : "FAIL", o.replans, o.maxLadderLevel,
                    static_cast<long long>(o.ticks), o.detail.c_str());
      }
    }
  }

  // 4. Report.
  std::printf("\n%8s %9s %9s %6s %8s %12s %12s\n", "profile", "arm",
              "success", "stops", "replans", "p50 replan", "p99 replan");
  for (const Cell& c : cells) {
    const CellSummary s = summarize(c);
    std::printf("%8s %9s %8.1f%% %6d %8d %10.1fms %10.1fms\n",
                c.profile.c_str(), c.arm.c_str(), 100.0 * s.successRate,
                s.safeStops, s.replansTotal, s.p50LatencyMs, s.p99LatencyMs);
  }
  const double wallMs = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - wall0)
                            .count();
  writeJson(cells, batches, trials, seed, wallMs);

  // 5. The gate: closed-loop replanning must beat the open loop
  //    strictly on both fatal-fault profiles.
  bool pass = true;
  for (const char* profile : {"burst", "crash"}) {
    const CellSummary open = summarize(*findCell(cells, profile, "hardened"));
    const CellSummary closed = summarize(*findCell(cells, profile, "replan"));
    if (closed.successes <= open.successes) {
      std::printf("GATE FAIL: %s replanning %d/%d vs hardened-only %d/%d "
                  "(need strictly more successes)\n",
                  profile, closed.successes, trials, open.successes, trials);
      pass = false;
    } else {
      std::printf("GATE OK: %s replanning %.1f%% > hardened-only %.1f%% "
                  "(p99 replan latency %.1fms)\n",
                  profile, 100.0 * closed.successRate,
                  100.0 * open.successRate, closed.p99LatencyMs);
    }
  }
  return pass ? 0 : 1;
}
