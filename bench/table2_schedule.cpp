// Reproduction of Table 2: an excerpt of a generated schedule — the
// projection of the model trace onto plant actions, with Delay lines.
#include <cstdio>
#include <iostream>
#include <sstream>

#include "bench_util.hpp"
#include "engine/trace.hpp"
#include "plant/plant.hpp"
#include "synthesis/schedule.hpp"

int main() {
  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(2);
  const auto p = plant::buildPlant(cfg);

  engine::Options opts;
  opts.order = engine::SearchOrder::kDfs;
  opts.dfsReverse = true;
  opts.maxSeconds = 120.0;
  engine::Reachability checker(p->sys, opts);
  const engine::Result res = checker.run(p->goal);
  if (!res.reachable) {
    std::puts("no schedule found");
    return 1;
  }
  std::string err;
  const auto ct = engine::concretize(p->sys, res.trace, &err);
  if (!ct.has_value()) {
    std::cout << "concretization failed: " << err << "\n";
    return 1;
  }
  const synthesis::Schedule sched = synthesis::project(p->sys, *ct);

  std::printf("Table 2: part of a generated schedule (2 batches, %zu "
              "commands, makespan %lld)\n\n",
              sched.items.size(),
              static_cast<long long>(sched.makespan));
  std::istringstream text(sched.toText());
  std::string line;
  int shown = 0;
  while (std::getline(text, line) && shown < 24) {
    std::printf("  %s\n", line.c_str());
    ++shown;
  }
  std::printf("  ...\n");
  benchutil::Report report("table2_schedule");
  report.add("schedule-2batch", res.stats.seconds * 1000.0,
             res.stats.peakBytes, res.stats.statesStored);
  report.write();
  return 0;
}
