// Shared helpers for the reproduction benchmarks.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "engine/reachability.hpp"
#include "plant/plant.hpp"

namespace benchutil {

struct CellResult {
  bool ran = false;        ///< false: skipped because a smaller size failed
  bool reachable = false;
  double seconds = 0.0;
  double megabytes = 0.0;
  size_t peakBytes = 0;
  size_t storedStates = 0;
  engine::Cutoff cutoff = engine::Cutoff::kNone;
};

/// The repository root (nearest ancestor of the working directory
/// holding ROADMAP.md), so benchmarks launched from build trees still
/// drop their reports in one well-known place. Falls back to the
/// working directory outside a checkout.
[[nodiscard]] inline std::filesystem::path repoRoot() {
  namespace fs = std::filesystem;
  std::error_code ec;
  for (fs::path p = fs::current_path(ec); !p.empty(); p = p.parent_path()) {
    if (fs::exists(p / "ROADMAP.md", ec)) return p;
    if (p == p.parent_path()) break;
  }
  return fs::current_path(ec);
}

/// Short revision of the checkout the benchmark actually ran in,
/// resolved at runtime from `git rev-parse` — a compile-time or
/// hand-maintained revision silently goes stale the moment the report
/// is regenerated on a different commit. Returns "unknown" outside a
/// git checkout (or when git itself is unavailable).
[[nodiscard]] inline std::string gitRev() {
  std::string rev;
#if defined(__unix__) || defined(__APPLE__)
  const std::string cmd =
      "git -C '" + repoRoot().string() + "' rev-parse --short HEAD 2>/dev/null";
  if (FILE* p = ::popen(cmd.c_str(), "r")) {
    char buf[64] = {};
    if (std::fgets(buf, sizeof buf, p) != nullptr) rev = buf;
    ::pclose(p);
  }
#endif
  while (!rev.empty() && std::isspace(static_cast<unsigned char>(rev.back()))) {
    rev.pop_back();
  }
  for (const char c : rev) {
    if (std::isxdigit(static_cast<unsigned char>(c)) == 0) return "unknown";
  }
  return rev.empty() ? "unknown" : rev;
}

[[nodiscard]] inline std::string hostName() {
#if defined(__unix__) || defined(__APPLE__)
  char buf[256] = {};
  if (::gethostname(buf, sizeof buf - 1) == 0 && buf[0] != '\0') return buf;
#endif
  return "unknown";
}

[[nodiscard]] inline std::string utcTimestamp() {
  std::time_t now = std::time(nullptr);
  std::tm tm{};
#if defined(__unix__) || defined(__APPLE__)
  gmtime_r(&now, &tm);
#else
  tm = *std::gmtime(&now);
#endif
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// Accumulates benchmark rows and writes them as BENCH_<name>.json at
/// the repo root — the machine-readable record the bench trajectory
/// compares across PRs. One row per workload; the schema is fixed:
/// a provenance header (git_rev resolved at runtime, hostname, UTC
/// timestamp) plus workload / wall_ms / peak_bytes / stored_states.
class Report {
 public:
  explicit Report(std::string name) : name_(std::move(name)) {}

  void add(std::string workload, double wallMs, size_t peakBytes,
           size_t storedStates) {
    rows_.push_back(Row{std::move(workload), wallMs, peakBytes, storedStates});
  }

  /// Best-effort write (a read-only checkout must not fail the bench).
  void write() const {
    const std::filesystem::path out = repoRoot() / ("BENCH_" + name_ + ".json");
    std::ofstream f(out);
    if (!f) return;
    f << "{\n  \"bench\": \"" << name_ << "\",\n  \"git_rev\": \"" << gitRev()
      << "\",\n  \"hostname\": \"" << hostName() << "\",\n  \"timestamp\": \""
      << utcTimestamp() << "\",\n  \"results\": [\n";
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      f << "    {\"workload\": \"" << r.workload << "\", \"wall_ms\": "
        << r.wallMs << ", \"peak_bytes\": " << r.peakBytes
        << ", \"stored_states\": " << r.storedStates << "}"
        << (i + 1 < rows_.size() ? "," : "") << "\n";
    }
    f << "  ]\n}\n";
  }

 private:
  struct Row {
    std::string workload;
    double wallMs;
    size_t peakBytes;
    size_t storedStates;
  };
  std::string name_;
  std::vector<Row> rows_;
};

/// Run one scheduling query. The paper's Table 1 "DFS" corresponds to
/// kRandomDfs with a fixed seed here: a depth-first search whose
/// successor order is a deterministic shuffle (UPPAAL's own successor
/// order is an arbitrary implementation artifact, and the plant model
/// is pathologically sensitive to it).
inline CellResult runCell(int batches, plant::GuideLevel guides,
                          engine::Options opts) {
  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(batches);
  cfg.guides = guides;
  const auto p = plant::buildPlant(cfg);
  engine::Reachability checker(p->sys, opts);
  const engine::Result res = checker.run(p->goal);
  CellResult out;
  out.ran = true;
  out.reachable = res.reachable;
  out.seconds = res.stats.seconds;
  out.megabytes = res.stats.peakMegabytes();
  out.peakBytes = res.stats.peakBytes;
  out.storedStates = res.stats.statesStored;
  out.cutoff = res.stats.cutoff;
  return out;
}

[[nodiscard]] inline engine::Options searchOptions(const std::string& kind,
                                                   double maxSeconds,
                                                   size_t maxMemoryMb) {
  engine::Options o;
  o.maxSeconds = maxSeconds;
  o.maxMemoryBytes = maxMemoryMb * 1024 * 1024;
  o.seed = 1;
  // The paper enables UPPAAL's compact constraint data-structure for
  // its measurements; our reduced-form store saves memory on the big
  // (many-clock) instances but disables subsumption-removal, which the
  // small unguided instances depend on — so the table uses the full
  // store and the ablation bench covers the compact one.
  o.compactPassed = false;
  if (kind == "BFS") {
    o.order = engine::SearchOrder::kBfs;
  } else if (kind == "DFS") {
    o.order = engine::SearchOrder::kRandomDfs;
  } else {  // BSH: depth-first with bit-state hashing
    o.order = engine::SearchOrder::kRandomDfs;
    o.bitstateHashing = true;
    o.hashBits = 23;
  }
  return o;
}

/// True when benchmarks should keep runtimes minimal (set BENCH_QUICK=1).
[[nodiscard]] inline bool quick() {
  const char* q = std::getenv("BENCH_QUICK");
  return q != nullptr && q[0] == '1';
}

}  // namespace benchutil
