// Shared helpers for the reproduction benchmarks.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "engine/reachability.hpp"
#include "plant/plant.hpp"

namespace benchutil {

struct CellResult {
  bool ran = false;        ///< false: skipped because a smaller size failed
  bool reachable = false;
  double seconds = 0.0;
  double megabytes = 0.0;
  engine::Cutoff cutoff = engine::Cutoff::kNone;
};

/// Run one scheduling query. The paper's Table 1 "DFS" corresponds to
/// kRandomDfs with a fixed seed here: a depth-first search whose
/// successor order is a deterministic shuffle (UPPAAL's own successor
/// order is an arbitrary implementation artifact, and the plant model
/// is pathologically sensitive to it).
inline CellResult runCell(int batches, plant::GuideLevel guides,
                          engine::Options opts) {
  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(batches);
  cfg.guides = guides;
  const auto p = plant::buildPlant(cfg);
  engine::Reachability checker(p->sys, opts);
  const engine::Result res = checker.run(p->goal);
  CellResult out;
  out.ran = true;
  out.reachable = res.reachable;
  out.seconds = res.stats.seconds;
  out.megabytes = res.stats.peakMegabytes();
  out.cutoff = res.stats.cutoff;
  return out;
}

[[nodiscard]] inline engine::Options searchOptions(const std::string& kind,
                                                   double maxSeconds,
                                                   size_t maxMemoryMb) {
  engine::Options o;
  o.maxSeconds = maxSeconds;
  o.maxMemoryBytes = maxMemoryMb * 1024 * 1024;
  o.seed = 1;
  // The paper enables UPPAAL's compact constraint data-structure for
  // its measurements; our reduced-form store saves memory on the big
  // (many-clock) instances but disables subsumption-removal, which the
  // small unguided instances depend on — so the table uses the full
  // store and the ablation bench covers the compact one.
  o.compactPassed = false;
  if (kind == "BFS") {
    o.order = engine::SearchOrder::kBfs;
  } else if (kind == "DFS") {
    o.order = engine::SearchOrder::kRandomDfs;
  } else {  // BSH: depth-first with bit-state hashing
    o.order = engine::SearchOrder::kRandomDfs;
    o.bitstateHashing = true;
    o.hashBits = 23;
  }
  return o;
}

/// True when benchmarks should keep runtimes minimal (set BENCH_QUICK=1).
[[nodiscard]] inline bool quick() {
  const char* q = std::getenv("BENCH_QUICK");
  return q != nullptr && q[0] == '1';
}

}  // namespace benchutil
