// Ablation of the engine options the paper's experiments rely on
// (§5: "the compact data-structure for constraints, the
// control-structure reduction, and ... the (in-)active clock
// reduction", plus bit-state hashing with its hash-size sensitivity).
//
// Fixed workload: the fully guided plant at 10 batches, depth-first.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

namespace {

void runRow(const char* name, int batches, engine::Options opts) {
  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(batches);
  const auto p = plant::buildPlant(cfg);
  engine::Reachability checker(p->sys, opts);
  const engine::Result res = checker.run(p->goal);
  if (res.reachable) {
    std::printf("%-34s %10zu %10zu %10.3f %9.1f\n", name,
                res.stats.statesExplored, res.stats.statesStored,
                res.stats.seconds, res.stats.peakMegabytes());
  } else {
    std::printf("%-34s %10s %10s %10s %9s   (cutoff=%d)\n", name, "-", "-",
                "-", "-", static_cast<int>(res.stats.cutoff));
  }
  std::fflush(stdout);
}

}  // namespace

int main() {
  const int n = benchutil::quick() ? 5 : 10;
  const double budget = benchutil::quick() ? 10.0 : 60.0;

  std::printf("Engine-option ablation (All Guides, %d batches, DFS):\n\n", n);
  std::printf("%-34s %10s %10s %10s %9s\n", "configuration", "explored",
              "stored", "seconds", "peakMB");

  engine::Options base = benchutil::searchOptions("DFS", budget, 4096);
  base.compactPassed = false;  // toggled explicitly below
  runRow("baseline (full zones, inclusion)", n, base);

  {
    engine::Options o = base;
    o.compactPassed = true;
    runRow("compact passed-list zones [9]", n, o);
  }
  {
    engine::Options o = base;
    o.activeClockReduction = false;
    runRow("no active-clock reduction", n, o);
  }
  {
    // Zone inclusion is what keeps the guided plant tractable: exact-
    // equality deduplication revisits near-identical zones endlessly.
    engine::Options o = base;
    o.inclusionChecking = false;
    o.maxSeconds = benchutil::quick() ? 5.0 : 20.0;
    runRow("no zone-inclusion checking", n, o);
  }
  {
    // Without extrapolation the zone graph need not be finite; the
    // budget turns divergence into a visible "-".
    engine::Options o = base;
    o.extrapolation = false;
    o.maxSeconds = benchutil::quick() ? 5.0 : 20.0;
    runRow("no max-bounds extrapolation", n, o);
  }

  std::printf("\nBit-state hashing: hash-table size sensitivity "
              "(paper: \"finding suitable hash table sizes is very "
              "tedious\"):\n\n");
  std::printf("%-34s %10s %10s %10s %9s\n", "configuration", "explored",
              "stored", "seconds", "peakMB");
  for (const uint32_t bits : {16u, 19u, 21u, 23u, 25u}) {
    engine::Options o = base;
    o.bitstateHashing = true;
    o.hashBits = bits;
    // Bit-state hashing forsakes zone inclusion, which the guided model
    // depends on at this size — expect "-" rows (the paper: BSH "does
    // not improve the situation when applied to model instances with
    // guides"). Keep the budget small.
    o.maxSeconds = benchutil::quick() ? 5.0 : 15.0;
    char name[64];
    std::snprintf(name, sizeof name, "BSH, 2^%u-bit table", bits);
    runRow(name, n, o);
  }
  return 0;
}
