// Ablation of the engine options the paper's experiments rely on
// (§5: "the compact data-structure for constraints, the
// control-structure reduction, and ... the (in-)active clock
// reduction", plus bit-state hashing with its hash-size sensitivity)
// and of the zone-abstraction operators (global Extra_M, per-location
// Extra_M, per-location Extra+_LU).
//
// Fixed workloads: the fully guided plant at 10 batches (depth-first)
// and Fischer's protocol at N = 7..9 (exhaustive proof of mutual
// exclusion — every stored state counts, so the abstraction's effect
// on the passed store is directly visible).
//
// `ablation_engine --smoke` runs only the abstraction gate: Fischer
// N=7 under Extra+_LU must agree with the global-M verdict while
// storing at least 20% fewer states, else exit nonzero (wired into
// ctest under the perf-smoke label).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "engine/trace.hpp"
#include "ta/system.hpp"

namespace {

benchutil::Report g_report("ablation_engine");

void runRow(const char* name, int batches, engine::Options opts) {
  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(batches);
  const auto p = plant::buildPlant(cfg);
  engine::Reachability checker(p->sys, opts);
  const engine::Result res = checker.run(p->goal);
  if (res.reachable) {
    std::printf("%-34s %10zu %10zu %10.3f %9.1f\n", name,
                res.stats.statesExplored, res.stats.statesStored,
                res.stats.seconds, res.stats.peakMegabytes());
    g_report.add(name, res.stats.seconds * 1000.0, res.stats.peakBytes,
                 res.stats.statesStored);
  } else {
    std::printf("%-34s %10s %10s %10s %9s   (cutoff=%d)\n", name, "-", "-",
                "-", "-", static_cast<int>(res.stats.cutoff));
  }
  std::fflush(stdout);
}

// ------------------------------------------------------------------
// Passed-store ablation: bytes held by the storage engine (flat store
// + interner arena) under the PR 4 knobs, on the guided plant.
// ------------------------------------------------------------------

engine::Result runStoreConfig(int batches, bool intern, bool compact,
                              bool merge, double budget) {
  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(batches);
  const auto p = plant::buildPlant(cfg);
  engine::Options o = benchutil::searchOptions("DFS", budget, 8192);
  o.internStates = intern;
  o.compactPassed = compact;
  o.mergeZones = merge;
  engine::Reachability checker(p->sys, o);
  return checker.run(p->goal);
}

void storeRow(const char* name, int batches, bool intern, bool compact,
              bool merge, double budget, size_t baselineBytes) {
  const engine::Result res =
      runStoreConfig(batches, intern, compact, merge, budget);
  if (!res.reachable) {
    std::printf("%-34s %10s %10s %10s %9s   (cutoff=%d)\n", name, "-", "-",
                "-", "-", static_cast<int>(res.stats.cutoff));
    return;
  }
  const size_t bytes = res.stats.storeBytes + res.stats.internBytes;
  if (baselineBytes == 0) {
    std::printf("%-34s %10zu %10zu %10.1f %9s\n", name,
                res.stats.statesStored, res.stats.zonesMerged,
                static_cast<double>(bytes) / (1024.0 * 1024.0), "base");
  } else {
    std::printf("%-34s %10zu %10zu %10.1f %8.1f%%\n", name,
                res.stats.statesStored, res.stats.zonesMerged,
                static_cast<double>(bytes) / (1024.0 * 1024.0),
                100.0 * static_cast<double>(bytes) /
                    static_cast<double>(baselineBytes));
  }
  g_report.add(std::string("store-") + name, res.stats.seconds * 1000.0,
               bytes, res.stats.statesStored);
  std::fflush(stdout);
}

/// The PR 4 acceptance gate: on the large guided workload the
/// interned + merged + reduced-form store must hold <= 70% of the
/// bytes of the pre-interning layout (append-only arena, full zones,
/// no merging) at the same verdict, with a trace that still validates.
/// Both runs are goal-directed DFS with the same seed, so the byte
/// counts are deterministic per build.
int storeSmoke() {
  const int batches = benchutil::quick() ? 15 : 45;
  constexpr double kBudget = 480.0;
  const engine::Result base =
      runStoreConfig(batches, false, false, false, kBudget);
  const engine::Result opt =
      runStoreConfig(batches, true, true, true, kBudget);
  const size_t baseBytes = base.stats.storeBytes + base.stats.internBytes;
  const size_t optBytes = opt.stats.storeBytes + opt.stats.internBytes;
  std::printf("guided %d-batch  baseline: reach=%d store+intern=%.1f MB  "
              "optimized: reach=%d store+intern=%.1f MB merges=%zu\n",
              batches, base.reachable ? 1 : 0,
              static_cast<double>(baseBytes) / (1024.0 * 1024.0),
              opt.reachable ? 1 : 0,
              static_cast<double>(optBytes) / (1024.0 * 1024.0),
              opt.stats.zonesMerged);
  if (!base.reachable || !opt.reachable) {
    std::printf("FAIL: schedule not found (baseline=%d optimized=%d)\n",
                base.reachable ? 1 : 0, opt.reachable ? 1 : 0);
    return 1;
  }
  // The optimized store must not change the answer's substance: the
  // trace it reconstructs still concretizes into a valid timed run.
  {
    plant::PlantConfig cfg;
    cfg.order = plant::standardOrder(batches);
    const auto p = plant::buildPlant(cfg);
    std::string err;
    const auto ct = engine::concretize(p->sys, opt.trace, &err);
    if (!ct.has_value() || !engine::validate(p->sys, *ct, &err)) {
      std::printf("FAIL: optimized-store trace invalid: %s\n", err.c_str());
      return 1;
    }
  }
  const double ratio =
      static_cast<double>(optBytes) / static_cast<double>(baseBytes);
  if (ratio > 0.7) {
    std::printf("FAIL: optimized store holds %.1f%% of baseline bytes "
                "(need <= 70%%)\n", 100.0 * ratio);
    return 1;
  }
  std::printf("PASS: optimized store holds %.1f%% of baseline bytes\n",
              100.0 * ratio);
  return 0;
}

// ------------------------------------------------------------------
// Zone-abstraction ablation: Fischer's protocol, exhaustive mutex
// proof (K >= D, so the bad state is unreachable and the engine must
// visit the whole abstract zone graph).
// ------------------------------------------------------------------

struct Fischer {
  ta::System sys;
  std::vector<ta::ProcId> procs;
  std::vector<ta::LocId> critical;

  Fischer(int n, int d, int k) {
    const ta::VarId id = sys.addVar("id", 0);
    for (int i = 1; i <= n; ++i) {
      const ta::ClockId x = sys.addClock("x" + std::to_string(i));
      const ta::ProcId p = sys.addAutomaton("P" + std::to_string(i));
      procs.push_back(p);
      auto& a = sys.automaton(p);
      const ta::LocId idle = a.addLocation("idle");
      const ta::LocId trying = a.addLocation("trying");
      const ta::LocId waiting = a.addLocation("waiting");
      const ta::LocId crit = a.addLocation("critical");
      critical.push_back(crit);
      a.setInvariant(trying, {ta::ccLe(x, d)});
      sys.edge(p, idle, trying).guard(sys.rd(id) == 0).reset(x);
      sys.edge(p, trying, waiting).when(ta::ccLe(x, d)).reset(x).assign(id, i);
      sys.edge(p, waiting, crit).when(ta::ccGt(x, k)).guard(sys.rd(id) == i);
      sys.edge(p, waiting, idle).guard(sys.rd(id) != i);
      sys.edge(p, crit, idle).assign(id, 0);
    }
    sys.finalize();
  }

  [[nodiscard]] engine::Goal mutexViolation() const {
    engine::Goal bad;
    bad.locations = {{procs[0], critical[0]}, {procs[1], critical[1]}};
    return bad;
  }
};

engine::Result runFischer(int n, engine::Extrapolation ex, bool activeClocks,
                          double budget, size_t maxStates = 0) {
  Fischer f(n, /*d=*/2, /*k=*/3);
  engine::Options o;
  o.order = engine::SearchOrder::kBfs;  // deterministic stored counts
  o.extrapolation = ex;
  o.activeClockReduction = activeClocks;
  o.maxSeconds = budget;
  o.maxStates = maxStates;
  engine::Reachability checker(f.sys, o);
  return checker.run(f.mutexViolation());
}

void fischerRow(const char* name, int n, engine::Extrapolation ex,
                bool activeClocks, double budget, size_t globalStored) {
  const engine::Result res = runFischer(n, ex, activeClocks, budget);
  if (!res.exhausted) {
    std::printf("  %-32s %10s %10s %10s %9s   (cutoff=%d)\n", name, "-", "-",
                "-", "-", static_cast<int>(res.stats.cutoff));
    return;
  }
  if (globalStored == 0) {
    // The global-M baseline itself hit a cutoff: no reference count.
    std::printf("  %-32s %10zu %10zu %10.3f %9s\n", name,
                res.stats.statesExplored, res.stats.storedZones,
                res.stats.seconds, "n/a");
  } else {
    const double red =
        100.0 * (1.0 - static_cast<double>(res.stats.storedZones) /
                           static_cast<double>(globalStored));
    std::printf("  %-32s %10zu %10zu %10.3f %8.1f%%\n", name,
                res.stats.statesExplored, res.stats.storedZones,
                res.stats.seconds, red);
  }
  std::fflush(stdout);
}

/// The acceptance gate: Extra+_LU (with the active-clock reduction)
/// must prove Fischer N=7 safe while storing at least 20% fewer zones
/// than global Extra_M. Global-M cannot exhaust N=7 in bench time, so
/// its run is truncated by a *state-count* cutoff: sequential BFS
/// makes the stored count at that point deterministic on any hardware,
/// and a truncated count only under-states the true total, so the
/// ratio test stays sound. The wall-clock budget is a backstop so a
/// pathologically slow box times the test out rather than flaking it.
int smoke() {
  constexpr int kN = 7;
  constexpr double kBudget = 480.0;
  constexpr size_t kBaseStates = 500000;
  const engine::Result base = runFischer(kN, engine::Extrapolation::kGlobalM,
                                         true, kBudget, kBaseStates);
  const engine::Result lu =
      runFischer(kN, engine::Extrapolation::kLocationLUPlus, true, kBudget);
  std::printf("fischer N=%d  globalM: stored=%zu exhausted=%d cutoff=%d  "
              "LU+: stored=%zu exhausted=%d coarsenings=%zu freed=%zu\n",
              kN, base.stats.storedZones, base.exhausted ? 1 : 0,
              static_cast<int>(base.stats.cutoff), lu.stats.storedZones,
              lu.exhausted ? 1 : 0, lu.stats.extrapolationCoarsenings,
              lu.stats.inactiveClocksFreed);
  if (!lu.exhausted) {
    std::printf("FAIL: Extra+_LU search hit a cutoff\n");
    return 1;
  }
  if (base.reachable || lu.reachable) {
    std::printf("FAIL: mutex violation claimed reachable (K >= D)\n");
    return 1;
  }
  if (!base.exhausted && base.stats.cutoff != engine::Cutoff::kStates) {
    std::printf("FAIL: global-M baseline stopped early (cutoff=%d)\n",
                static_cast<int>(base.stats.cutoff));
    return 1;
  }
  const double ratio = static_cast<double>(lu.stats.storedZones) /
                       static_cast<double>(base.stats.storedZones);
  if (ratio > 0.8) {
    std::printf("FAIL: Extra+_LU stored %.1f%% of the global-M states "
                "(need <= 80%%)\n", 100.0 * ratio);
    return 1;
  }
  std::printf("PASS: Extra+_LU stores %.1f%% of the global-M states "
              "(baseline %s)\n", 100.0 * ratio,
              base.exhausted ? "exhaustive" : "truncated lower bound");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return smoke();
  if (argc > 1 && std::strcmp(argv[1], "--store-smoke") == 0) {
    return storeSmoke();
  }

  const int n = benchutil::quick() ? 5 : 10;
  const double budget = benchutil::quick() ? 10.0 : 60.0;

  std::printf("Engine-option ablation (All Guides, %d batches, DFS):\n\n", n);
  std::printf("%-34s %10s %10s %10s %9s\n", "configuration", "explored",
              "stored", "seconds", "peakMB");

  engine::Options base = benchutil::searchOptions("DFS", budget, 4096);
  base.compactPassed = false;  // toggled explicitly below
  runRow("baseline (full zones, inclusion)", n, base);

  {
    engine::Options o = base;
    o.compactPassed = true;
    runRow("compact passed-list zones [9]", n, o);
  }
  {
    engine::Options o = base;
    o.activeClockReduction = false;
    runRow("no active-clock reduction", n, o);
  }
  {
    // Zone inclusion is what keeps the guided plant tractable: exact-
    // equality deduplication revisits near-identical zones endlessly.
    engine::Options o = base;
    o.inclusionChecking = false;
    o.maxSeconds = benchutil::quick() ? 5.0 : 20.0;
    runRow("no zone-inclusion checking", n, o);
  }
  {
    // Without extrapolation the zone graph need not be finite; the
    // budget turns divergence into a visible "-".
    engine::Options o = base;
    o.extrapolation = engine::Extrapolation::kNone;
    o.maxSeconds = benchutil::quick() ? 5.0 : 20.0;
    runRow("no max-bounds extrapolation", n, o);
  }
  {
    engine::Options o = base;
    o.extrapolation = engine::Extrapolation::kGlobalM;
    runRow("global Extra_M abstraction", n, o);
  }
  {
    engine::Options o = base;
    o.extrapolation = engine::Extrapolation::kLocationM;
    runRow("per-location Extra_M", n, o);
  }

  std::printf("\nZone-abstraction operators on Fischer (D=2, K=3, "
              "exhaustive mutex proof, BFS):\n\n");
  std::printf("  %-32s %10s %10s %10s %9s\n", "configuration", "explored",
              "stored", "seconds", "vs glob");
  const int maxN = benchutil::quick() ? 7 : 9;
  const double fbudget = benchutil::quick() ? 60.0 : 300.0;
  for (int fn = 7; fn <= maxN; ++fn) {
    std::printf("  -- N = %d --\n", fn);
    const engine::Result g =
        runFischer(fn, engine::Extrapolation::kGlobalM, true, fbudget);
    const size_t gs = g.exhausted ? g.stats.storedZones : 0;
    fischerRow("global Extra_M", fn, engine::Extrapolation::kGlobalM, true,
               fbudget, gs);
    fischerRow("per-location Extra_M", fn, engine::Extrapolation::kLocationM,
               true, fbudget, gs);
    fischerRow("per-location Extra+_LU", fn,
               engine::Extrapolation::kLocationLUPlus, true, fbudget, gs);
    fischerRow("Extra+_LU, no active clocks", fn,
               engine::Extrapolation::kLocationLUPlus, false, fbudget, gs);
  }

  std::printf("\nPassed-store bytes (All Guides, %d batches, DFS; "
              "store + interner arena):\n\n", n);
  std::printf("%-34s %10s %10s %10s %9s\n", "configuration", "stored",
              "merged", "MB", "vs base");
  {
    const engine::Result b = runStoreConfig(n, false, false, false, budget);
    const size_t bb =
        b.reachable ? b.stats.storeBytes + b.stats.internBytes : 0;
    if (b.reachable) {
      std::printf("%-34s %10zu %10zu %10.1f %9s\n",
                  "no interning, full zones", b.stats.statesStored,
                  b.stats.zonesMerged,
                  static_cast<double>(bb) / (1024.0 * 1024.0), "base");
      g_report.add("store-no-interning-full", b.stats.seconds * 1000.0, bb,
                   b.stats.statesStored);
    }
    storeRow("interned, full zones", n, true, false, false, budget, bb);
    storeRow("interned + merging", n, true, false, true, budget, bb);
    storeRow("interned + compact + merging", n, true, true, true, budget, bb);
  }

  std::printf("\nBit-state hashing: hash-table size sensitivity "
              "(paper: \"finding suitable hash table sizes is very "
              "tedious\"):\n\n");
  std::printf("%-34s %10s %10s %10s %9s\n", "configuration", "explored",
              "stored", "seconds", "peakMB");
  for (const uint32_t bits : {16u, 19u, 21u, 23u, 25u}) {
    engine::Options o = base;
    o.bitstateHashing = true;
    o.hashBits = bits;
    // Bit-state hashing forsakes zone inclusion, which the guided model
    // depends on at this size — expect "-" rows (the paper: BSH "does
    // not improve the situation when applied to model instances with
    // guides"). Keep the budget small.
    o.maxSeconds = benchutil::quick() ? 5.0 : 15.0;
    char name[64];
    std::snprintf(name, sizeof name, "BSH, 2^%u-bit table", bits);
    runRow(name, n, o);
  }
  g_report.write();
  return 0;
}
