// Micro-benchmarks of the DBM substrate (google-benchmark): the
// operations the reachability engine performs millions of times.
#include <benchmark/benchmark.h>

#include <chrono>
#include <random>
#include <vector>

#include "bench_util.hpp"
#include "dbm/dbm.hpp"

namespace {

dbm::Dbm randomZone(uint32_t dim, std::mt19937_64& rng) {
  std::uniform_int_distribution<int> clock(0, static_cast<int>(dim) - 1);
  std::uniform_int_distribution<int> val(-50, 50);
  for (;;) {
    dbm::Dbm z = dbm::Dbm::unconstrained(dim);
    for (uint32_t k = 0; k < dim; ++k) {
      const auto i = static_cast<uint32_t>(clock(rng));
      auto j = static_cast<uint32_t>(clock(rng));
      if (i == j) j = (j + 1) % dim;
      if (!z.constrain(i, j, dbm::boundWeak(val(rng)))) break;
    }
    if (!z.isEmpty()) return z;
  }
}

void BM_Close(benchmark::State& state) {
  const auto dim = static_cast<uint32_t>(state.range(0));
  std::mt19937_64 rng(7);
  dbm::Dbm z = randomZone(dim, rng);
  for (auto _ : state) {
    dbm::Dbm w = z;
    benchmark::DoNotOptimize(w.close());
  }
}
BENCHMARK(BM_Close)->Arg(8)->Arg(32)->Arg(64)->Arg(184);

void BM_Up(benchmark::State& state) {
  const auto dim = static_cast<uint32_t>(state.range(0));
  std::mt19937_64 rng(7);
  dbm::Dbm z = randomZone(dim, rng);
  for (auto _ : state) {
    dbm::Dbm w = z;
    w.up();
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_Up)->Arg(8)->Arg(32)->Arg(184);

void BM_ConstrainIncremental(benchmark::State& state) {
  const auto dim = static_cast<uint32_t>(state.range(0));
  std::mt19937_64 rng(7);
  dbm::Dbm z = randomZone(dim, rng);
  for (auto _ : state) {
    dbm::Dbm w = z;
    benchmark::DoNotOptimize(w.constrain(1, 0, dbm::boundWeak(3)));
  }
}
BENCHMARK(BM_ConstrainIncremental)->Arg(8)->Arg(32)->Arg(184);

void BM_Inclusion(benchmark::State& state) {
  const auto dim = static_cast<uint32_t>(state.range(0));
  std::mt19937_64 rng(7);
  const dbm::Dbm a = randomZone(dim, rng);
  const dbm::Dbm b = randomZone(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.includes(b));
  }
}
BENCHMARK(BM_Inclusion)->Arg(8)->Arg(32)->Arg(184);

void BM_Reset(benchmark::State& state) {
  const auto dim = static_cast<uint32_t>(state.range(0));
  std::mt19937_64 rng(7);
  dbm::Dbm z = randomZone(dim, rng);
  for (auto _ : state) {
    dbm::Dbm w = z;
    w.reset(1, 0);
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_Reset)->Arg(8)->Arg(32)->Arg(184);

void BM_Extrapolate(benchmark::State& state) {
  const auto dim = static_cast<uint32_t>(state.range(0));
  std::mt19937_64 rng(7);
  dbm::Dbm z = randomZone(dim, rng);
  std::vector<dbm::value_t> max(dim, 20);
  max[0] = 0;
  for (auto _ : state) {
    dbm::Dbm w = z;
    w.extrapolateMaxBounds(max);
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_Extrapolate)->Arg(8)->Arg(32)->Arg(184);

void BM_ExtrapolateLU(benchmark::State& state) {
  const auto dim = static_cast<uint32_t>(state.range(0));
  std::mt19937_64 rng(7);
  dbm::Dbm z = randomZone(dim, rng);
  // Asymmetric bounds with a sprinkling of "never compared" (-1)
  // entries — the shape the per-location analysis actually produces.
  std::vector<dbm::value_t> lower(dim, 20);
  std::vector<dbm::value_t> upper(dim, 20);
  lower[0] = upper[0] = 0;
  for (uint32_t i = 1; i < dim; ++i) {
    if (i % 3 == 0) lower[i] = -1;
    if (i % 4 == 0) upper[i] = 5;
  }
  for (auto _ : state) {
    dbm::Dbm w = z;
    w.extrapolateLUBounds(lower, upper);
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_ExtrapolateLU)->Arg(8)->Arg(32)->Arg(184);

void BM_FreeInactiveClocks(benchmark::State& state) {
  // The active-clock reduction frees every clock inactive at the
  // target location vector; model a quarter of the clocks being dead.
  const auto dim = static_cast<uint32_t>(state.range(0));
  std::mt19937_64 rng(7);
  dbm::Dbm z = randomZone(dim, rng);
  for (auto _ : state) {
    dbm::Dbm w = z;
    for (uint32_t i = 1; i < dim; i += 4) w.freeClock(i);
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_FreeInactiveClocks)->Arg(8)->Arg(32)->Arg(184);

void BM_Hash(benchmark::State& state) {
  const auto dim = static_cast<uint32_t>(state.range(0));
  std::mt19937_64 rng(7);
  const dbm::Dbm z = randomZone(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.hash());
  }
}
BENCHMARK(BM_Hash)->Arg(8)->Arg(32)->Arg(184);

/// Fixed-iteration timings of the two hottest kernels, recorded in the
/// BENCH_dbm_micro.json trajectory (google-benchmark owns stdout; this
/// re-times a stable subset rather than parsing its reporter output).
void writeReport() {
  using Clock = std::chrono::steady_clock;
  benchutil::Report report("dbm_micro");
  std::mt19937_64 rng(7);
  for (const uint32_t dim : {32u, 184u}) {
    const dbm::Dbm z = randomZone(dim, rng);
    const dbm::Dbm w = randomZone(dim, rng);
    const int iters = dim > 100 ? 200 : 2000;

    Clock::time_point t0 = Clock::now();
    for (int k = 0; k < iters; ++k) {
      dbm::Dbm c = z;
      benchmark::DoNotOptimize(c.close());
    }
    report.add("close-dim" + std::to_string(dim) + "-x" +
                   std::to_string(iters),
               std::chrono::duration<double, std::milli>(Clock::now() - t0)
                   .count(),
               0, 0);

    t0 = Clock::now();
    for (int k = 0; k < iters * 10; ++k) {
      benchmark::DoNotOptimize(z.includes(w));
    }
    report.add("includes-dim" + std::to_string(dim) + "-x" +
                   std::to_string(iters * 10),
               std::chrono::duration<double, std::milli>(Clock::now() - t0)
                   .count(),
               0, 0);
  }
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  writeReport();
  return 0;
}
