// Micro-benchmarks of the DBM substrate (google-benchmark): the
// operations the reachability engine performs millions of times.
// `--simd-smoke` instead runs the roofline gate: the vectorized
// close / inclusion / batch-scan kernels must beat the forced-scalar
// baseline by >= 1.5x on hardware with a vector path, recorded in
// BENCH_dbm_micro.json (hw-aware skip elsewhere).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "dbm/dbm.hpp"
#include "dbm/simd.hpp"
#include "dbm/zone_batch.hpp"

namespace {

dbm::Dbm randomZone(uint32_t dim, std::mt19937_64& rng) {
  std::uniform_int_distribution<int> clock(0, static_cast<int>(dim) - 1);
  std::uniform_int_distribution<int> val(-50, 50);
  for (;;) {
    dbm::Dbm z = dbm::Dbm::unconstrained(dim);
    for (uint32_t k = 0; k < dim; ++k) {
      const auto i = static_cast<uint32_t>(clock(rng));
      auto j = static_cast<uint32_t>(clock(rng));
      if (i == j) j = (j + 1) % dim;
      if (!z.constrain(i, j, dbm::boundWeak(val(rng)))) break;
    }
    if (!z.isEmpty()) return z;
  }
}

void BM_Close(benchmark::State& state) {
  const auto dim = static_cast<uint32_t>(state.range(0));
  std::mt19937_64 rng(7);
  dbm::Dbm z = randomZone(dim, rng);
  for (auto _ : state) {
    dbm::Dbm w = z;
    benchmark::DoNotOptimize(w.close());
  }
}
BENCHMARK(BM_Close)->Arg(8)->Arg(32)->Arg(64)->Arg(184);

void BM_Up(benchmark::State& state) {
  const auto dim = static_cast<uint32_t>(state.range(0));
  std::mt19937_64 rng(7);
  dbm::Dbm z = randomZone(dim, rng);
  for (auto _ : state) {
    dbm::Dbm w = z;
    w.up();
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_Up)->Arg(8)->Arg(32)->Arg(184);

void BM_ConstrainIncremental(benchmark::State& state) {
  const auto dim = static_cast<uint32_t>(state.range(0));
  std::mt19937_64 rng(7);
  dbm::Dbm z = randomZone(dim, rng);
  for (auto _ : state) {
    dbm::Dbm w = z;
    benchmark::DoNotOptimize(w.constrain(1, 0, dbm::boundWeak(3)));
  }
}
BENCHMARK(BM_ConstrainIncremental)->Arg(8)->Arg(32)->Arg(184);

void BM_Inclusion(benchmark::State& state) {
  const auto dim = static_cast<uint32_t>(state.range(0));
  std::mt19937_64 rng(7);
  const dbm::Dbm a = randomZone(dim, rng);
  const dbm::Dbm b = randomZone(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.includes(b));
  }
}
BENCHMARK(BM_Inclusion)->Arg(8)->Arg(32)->Arg(184);

void BM_Reset(benchmark::State& state) {
  const auto dim = static_cast<uint32_t>(state.range(0));
  std::mt19937_64 rng(7);
  dbm::Dbm z = randomZone(dim, rng);
  for (auto _ : state) {
    dbm::Dbm w = z;
    w.reset(1, 0);
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_Reset)->Arg(8)->Arg(32)->Arg(184);

void BM_Extrapolate(benchmark::State& state) {
  const auto dim = static_cast<uint32_t>(state.range(0));
  std::mt19937_64 rng(7);
  dbm::Dbm z = randomZone(dim, rng);
  std::vector<dbm::value_t> max(dim, 20);
  max[0] = 0;
  for (auto _ : state) {
    dbm::Dbm w = z;
    w.extrapolateMaxBounds(max);
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_Extrapolate)->Arg(8)->Arg(32)->Arg(184);

void BM_ExtrapolateLU(benchmark::State& state) {
  const auto dim = static_cast<uint32_t>(state.range(0));
  std::mt19937_64 rng(7);
  dbm::Dbm z = randomZone(dim, rng);
  // Asymmetric bounds with a sprinkling of "never compared" (-1)
  // entries — the shape the per-location analysis actually produces.
  std::vector<dbm::value_t> lower(dim, 20);
  std::vector<dbm::value_t> upper(dim, 20);
  lower[0] = upper[0] = 0;
  for (uint32_t i = 1; i < dim; ++i) {
    if (i % 3 == 0) lower[i] = -1;
    if (i % 4 == 0) upper[i] = 5;
  }
  for (auto _ : state) {
    dbm::Dbm w = z;
    w.extrapolateLUBounds(lower, upper);
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_ExtrapolateLU)->Arg(8)->Arg(32)->Arg(184);

void BM_FreeInactiveClocks(benchmark::State& state) {
  // The active-clock reduction frees every clock inactive at the
  // target location vector; model a quarter of the clocks being dead.
  const auto dim = static_cast<uint32_t>(state.range(0));
  std::mt19937_64 rng(7);
  dbm::Dbm z = randomZone(dim, rng);
  for (auto _ : state) {
    dbm::Dbm w = z;
    for (uint32_t i = 1; i < dim; i += 4) w.freeClock(i);
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_FreeInactiveClocks)->Arg(8)->Arg(32)->Arg(184);

void BM_Hash(benchmark::State& state) {
  const auto dim = static_cast<uint32_t>(state.range(0));
  std::mt19937_64 rng(7);
  const dbm::Dbm z = randomZone(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.hash());
  }
}
BENCHMARK(BM_Hash)->Arg(8)->Arg(32)->Arg(184);

/// Fixed-iteration timings of the two hottest kernels, recorded in the
/// BENCH_dbm_micro.json trajectory (google-benchmark owns stdout; this
/// re-times a stable subset rather than parsing its reporter output).
void writeReport() {
  using Clock = std::chrono::steady_clock;
  benchutil::Report report("dbm_micro");
  std::mt19937_64 rng(7);
  for (const uint32_t dim : {32u, 184u}) {
    const dbm::Dbm z = randomZone(dim, rng);
    const dbm::Dbm w = randomZone(dim, rng);
    const int iters = dim > 100 ? 200 : 2000;

    Clock::time_point t0 = Clock::now();
    for (int k = 0; k < iters; ++k) {
      dbm::Dbm c = z;
      benchmark::DoNotOptimize(c.close());
    }
    report.add("close-dim" + std::to_string(dim) + "-x" +
                   std::to_string(iters),
               std::chrono::duration<double, std::milli>(Clock::now() - t0)
                   .count(),
               0, 0);

    t0 = Clock::now();
    for (int k = 0; k < iters * 10; ++k) {
      benchmark::DoNotOptimize(z.includes(w));
    }
    report.add("includes-dim" + std::to_string(dim) + "-x" +
                   std::to_string(iters * 10),
               std::chrono::duration<double, std::milli>(Clock::now() - t0)
                   .count(),
               0, 0);
  }
  report.write();
}

/// Best-of-three wall time of `body()` run `iters` times.
template <typename F>
double timeMs(int iters, F&& body) {
  using Clock = std::chrono::steady_clock;
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const Clock::time_point t0 = Clock::now();
    for (int k = 0; k < iters; ++k) body();
    best = std::min(
        best,
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
  }
  return best;
}

/// Roofline gate: times the three kernel families the engines lean on —
/// Floyd–Warshall closure, pairwise inclusion, and the ZoneBatch
/// superset scan — once with dispatch forced to scalar and once at the
/// detected level, in this one binary. Returns the number of kernels
/// under the 1.5x bar (0 on scalar-only hardware: nothing to gate).
int simdSmoke() {
  namespace simd = dbm::simd;
  const simd::Level detected = simd::detectedLevel();
  benchutil::Report report("dbm_micro");
  if (detected == simd::Level::kScalar) {
    std::printf("simd-smoke: SKIP (no vector path on %s hardware)\n",
                simd::levelName(detected));
    report.add("simd-smoke-skipped", 0.0, 0, 0);
    report.write();
    return 0;
  }

  std::mt19937_64 rng(7);
  const uint32_t dim = 184;  // the 45-batch network's DBM size class
  const dbm::Dbm canon = randomZone(dim, rng);
  // close() on an already-canonical matrix still runs the full cubic
  // loop nest, so copies of one zone are a faithful workload.
  // The inclusion operand is a tightened copy: a true superset
  // relation scans every row to the end (a random pair fails on the
  // first entry and exits before the kernel can matter — the covered()
  // hot path is dominated by the scans that succeed).
  dbm::Dbm other = canon;
  other.constrain(1, 0, dbm::boundWeak(dbm::boundValue(canon.at(1, 0)) - 1));

  dbm::ZoneBatch batch(64);
  std::vector<dbm::Dbm> queries;
  {
    std::mt19937_64 brng(11);
    for (int k = 0; k < 256; ++k) batch.push(randomZone(64, brng));
    for (int k = 0; k < 64; ++k) queries.push_back(randomZone(64, brng));
  }

  struct Kernel {
    const char* name;
    int iters;
    double scalarMs = 0.0;
    double simdMs = 0.0;
  } kernels[] = {
      {"close-dim184", 40},
      {"includes-dim184", 20000},
      {"batch-superset-256x64", 200},
  };
  const auto runAll = [&](bool scalar) {
    simd::forceLevel(scalar ? simd::Level::kScalar : detected);
    double* slot = scalar ? &kernels[0].scalarMs : &kernels[0].simdMs;
    *slot = timeMs(kernels[0].iters, [&] {
      dbm::Dbm w = canon;
      benchmark::DoNotOptimize(w.close());
    });
    slot = scalar ? &kernels[1].scalarMs : &kernels[1].simdMs;
    *slot = timeMs(kernels[1].iters, [&] {
      benchmark::DoNotOptimize(canon.includes(other));
    });
    slot = scalar ? &kernels[2].scalarMs : &kernels[2].simdMs;
    *slot = timeMs(kernels[2].iters, [&] {
      for (const dbm::Dbm& q : queries) {
        benchmark::DoNotOptimize(batch.anySuperset(q.rawData()));
      }
    });
  };
  runAll(true);
  runAll(false);
  simd::forceLevel(detected);

  int failures = 0;
  for (const Kernel& k : kernels) {
    const double speedup = k.simdMs > 0.0 ? k.scalarMs / k.simdMs : 0.0;
    const bool ok = speedup >= 1.5;
    std::printf("simd-smoke: %-24s scalar %8.2f ms  %s %8.2f ms  %.2fx %s\n",
                k.name, k.scalarMs, simd::levelName(detected), k.simdMs,
                speedup, ok ? "ok" : "FAIL (< 1.5x)");
    if (!ok) ++failures;
    report.add(std::string(k.name) + "-scalar", k.scalarMs, 0, 0);
    report.add(std::string(k.name) + "-" + simd::levelName(detected),
               k.simdMs, 0, 0);
  }
  report.write();
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--simd-smoke") == 0) {
      return simdSmoke() == 0 ? 0 : 1;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  writeReport();
  return 0;
}
