// Reproduction of Table 1: time and space requirements for generating
// schedules, for three guide levels (All / Some / No) and three search
// strategies (BFS / DFS / DFS+bit-state hashing), over growing batch
// counts.
//
// As in the paper, "-" marks a configuration that exceeded its resource
// budget (the paper used 256 MB / 2 hours on a Pentium III; we default
// to 2 GB and per-cell time budgets scaled for a CI-sized run — set
// TABLE1_SECONDS to change).  Once a (guide, search) column fails at
// some size, larger sizes are skipped and printed as "-".
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.hpp"

int main() {
  using benchutil::CellResult;

  const double budget = [] {
    if (const char* s = std::getenv("TABLE1_SECONDS")) return atof(s);
    return benchutil::quick() ? 5.0 : 150.0;
  }();
  const size_t memMb = 4096;

  const std::vector<int> sizes = benchutil::quick()
                                     ? std::vector<int>{1, 2, 3, 5, 10}
                                     : std::vector<int>{1,  2,  3,  5,  10,
                                                        15, 20, 30, 45, 60};
  const std::vector<std::pair<plant::GuideLevel, const char*>> guideLevels = {
      {plant::GuideLevel::kAll, "All Guides"},
      {plant::GuideLevel::kSome, "Some Guides"},
      {plant::GuideLevel::kNone, "No Guides"},
  };
  const std::vector<const char*> searches = {"BFS", "DFS", "BSH"};

  std::printf("Table 1: time (s) and space (MB) for generating schedules\n");
  std::printf("(budget per cell: %.0f s / %zu MB; '-' = budget exceeded "
              "or skipped after a smaller size failed)\n\n",
              budget, memMb);
  std::printf("%4s |", "#");
  for (const auto& [g, gname] : guideLevels) {
    (void)g;
    std::printf(" %-29s |", gname);
  }
  std::printf("\n     |");
  for (size_t i = 0; i < guideLevels.size(); ++i) {
    for (const char* s : searches) std::printf(" %8s", s);
    std::printf("  |");
  }
  std::printf("\n");

  // Column give-up state: once a column fails, stop running it.
  std::map<std::pair<int, int>, bool> columnDead;
  benchutil::Report report("table1_guides");
  const std::vector<const char*> guideTags = {"all", "some", "none"};

  for (const int n : sizes) {
    std::printf("%4d |", n);
    for (size_t gi = 0; gi < guideLevels.size(); ++gi) {
      for (size_t si = 0; si < searches.size(); ++si) {
        const auto key = std::make_pair(static_cast<int>(gi),
                                        static_cast<int>(si));
        if (columnDead[key]) {
          std::printf(" %8s", "-");
          continue;
        }
        const CellResult r = benchutil::runCell(
            n, guideLevels[gi].first,
            benchutil::searchOptions(searches[si], budget, memMb));
        if (r.reachable) {
          std::printf(" %4.1f/%-3.0f", r.seconds, r.megabytes);
          report.add(std::string(guideTags[gi]) + "-" + searches[si] + "-" +
                         std::to_string(n) + "batch",
                     r.seconds * 1000.0, r.peakBytes, r.storedStates);
        } else {
          std::printf(" %8s", "-");
          columnDead[key] = true;
        }
        std::fflush(stdout);
      }
      std::printf("  |");
    }
    std::printf("\n");
  }
  report.write();
  std::printf(
      "\nShape to compare with the paper: without guides the model is "
      "intractable\nbeyond a couple of batches; adding the non-nextbatch "
      "guides buys a little;\nall guides make depth-first search scale to "
      "60 batches. BFS dies early on\nguided models; bit-state hashing "
      "trades completeness for space.\n");
  return 0;
}
