// Thread-scaling of the parallel depth-first engine on the paper's
// flagship workload shape: All-Guides batch-plant models, the only
// configuration whose search order (guided DFS) scales to 60 batches.
//
// Two workloads:
//
//  * "budget": the All-Guides model with an unsatisfiable extra goal
//    constraint and a fixed maxStates budget, so every run performs
//    the same amount of expansion work and stops on the states cutoff
//    (guided 3-batch exhaustion already tops 3M states, so a budget —
//    exactly like parallel_scaling's BFS workload — keeps the bench
//    honest and bounded).  The budget run uses bit-state hashing: the
//    full store's inclusion scans depend on exploration *order* (an
//    interleaved search stores more incomparable zones and scans
//    longer), which would let store effects masquerade as explorer
//    overhead; the O(1) bit-table claim makes per-state work identical
//    across thread counts.  This is the gated workload: the 4-thread
//    work-stealing run must beat 1 thread by a hardware-aware margin
//    (degrading to a bounded-overhead check below 4 cores, where
//    wall-clock speedup is physically impossible).
//  * "verdict": time-to-schedule on the real goal (45 batches in full
//    mode) for work-stealing DFS at 1/2/4 threads and the 4-seed
//    portfolio.  Gated at 1.5x only on >= 4-core hosts — goal-directed
//    speedup depends on actual parallel hardware; below that the rows
//    are reported but the gate is skipped.
//
// stdout: one JSON object per line,
//   {"workload": ..., "mode": "steal"|"portfolio", "threads": N,
//    "seconds": S, "statesExplored": E, "steals": K, "reachable": R}
// (machine-readable for the bench trajectory); the human-readable
// table goes to stderr.  Exit code != 0 on verdict mismatch or gate
// failure.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"

namespace {

struct Run {
  size_t threads;
  bool reachable;
  bool exhausted;
  double seconds;
  size_t explored;
  size_t steals;
};

Run runWorkload(int batches, size_t threads, bool portfolio,
                size_t maxStates) {
  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(batches);
  cfg.guides = plant::GuideLevel::kAll;
  const auto p = plant::buildPlant(cfg);

  engine::Goal goal = p->goal;
  if (maxStates > 0) {
    // Clock 1 <= -1 can never hold: the search never terminates on the
    // goal, so every run burns exactly the maxStates budget.
    goal.clockConstraints.push_back(ta::ccLe(1, -1));
  }

  // The flagship configuration from EXPERIMENTS.md: guided random-DFS
  // with a fixed seed (plain declaration-order DFS backtracks heavily
  // on large batch counts).
  engine::Options o;
  o.order = engine::SearchOrder::kRandomDfs;
  o.seed = 1;
  o.threads = threads;
  o.portfolio = portfolio;
  if (maxStates > 0) {
    o.maxStates = maxStates;
    o.bitstateHashing = true;
    o.hashBits = 24;
  }
  o.maxSeconds = 900.0;
  engine::Reachability checker(p->sys, o);
  const engine::Result res = checker.run(goal);
  return Run{threads,
             res.reachable,
             res.exhausted,
             res.stats.seconds,
             res.stats.statesExplored,
             res.stats.frameSteals};
}

benchutil::Report g_report("parallel_dfs_scaling");

void emit(const std::string& workload, const char* mode, const Run& r) {
  g_report.add(workload + "-" + mode + "-t" + std::to_string(r.threads),
               r.seconds * 1000.0, 0, r.explored);
  std::printf(
      "{\"workload\": \"%s\", \"mode\": \"%s\", \"threads\": %zu, "
      "\"seconds\": %.3f, \"statesExplored\": %zu, \"steals\": %zu, "
      "\"reachable\": %s}\n",
      workload.c_str(), mode, r.threads, r.seconds, r.explored, r.steals,
      r.reachable ? "true" : "false");
  std::fflush(stdout);
  std::fprintf(stderr, "%-10s %8zu %10.2f %12zu %8zu %9s\n", mode, r.threads,
               r.seconds, r.explored, r.steals,
               r.reachable ? "reach" : "unreach");
}

}  // namespace

int main(int argc, char** argv) {
  bool quickMode = benchutil::quick();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quickMode = true;
  }
  const double hw = static_cast<double>(
      std::max(1u, std::thread::hardware_concurrency()));

  int rc = 0;

  // ---- Gated workload: fixed expansion budget. ------------------------
  const int exBatches = 3;
  const size_t maxStates = quickMode ? 40000 : 400000;
  const std::string exName = "allguides-" + std::to_string(exBatches) +
                             "batch-budget-" +
                             std::to_string(maxStates / 1000) + "k";
  std::fprintf(stderr, "parallel_dfs_scaling: %s\n\n", exName.c_str());
  std::fprintf(stderr, "%-10s %8s %10s %12s %8s %9s\n", "mode", "threads",
               "seconds", "explored", "steals", "verdict");

  double base = 0.0;
  double speedup4 = 0.0;
  bool baseReachable = false;
  for (const size_t t : {size_t{1}, size_t{2}, size_t{4}}) {
    const Run r = runWorkload(exBatches, t, false, maxStates);
    if (t == 1) {
      base = r.seconds;
      baseReachable = r.reachable;
    } else if (r.reachable != baseReachable) {
      std::fprintf(stderr, "VERDICT MISMATCH at %zu threads\n", t);
      rc = 1;
    }
    const double speedup =
        (t == 1 || r.seconds <= 0.0) ? 1.0 : base / r.seconds;
    if (t == 4) speedup4 = speedup;
    emit(exName, "steal", r);
  }
  // Hardware-aware gate, same shape as parallel_scaling: 2x full /
  // 1.3x quick on a 4-core host, degrading proportionally down to a
  // bounded-overhead check (0.75x) on a single core.
  const double required =
      std::max(0.75, (quickMode ? 0.325 : 0.5) * std::min(4.0, hw));
  if (hw < 4.0) {
    std::fprintf(stderr,
                 "note: only %.0f hardware thread(s); scaling gate reduced "
                 "to %.2fx\n",
                 hw, required);
  }
  if (speedup4 < required) {
    std::fprintf(stderr, "scaling regression: %.2fx at 4 threads (< %.2fx)\n",
                 speedup4, required);
    rc = 1;
  }

  // ---- Verdict workload: time-to-schedule on the real goal. -----------
  const int vBatches = quickMode ? 15 : 45;
  const std::string vName =
      "allguides-" + std::to_string(vBatches) + "batch-verdict";
  std::fprintf(stderr, "\nparallel_dfs_scaling: %s\n\n", vName.c_str());
  std::fprintf(stderr, "%-10s %8s %10s %12s %8s %9s\n", "mode", "threads",
               "seconds", "explored", "steals", "verdict");

  double vBase = 0.0;
  double vSpeedup4 = 0.0;
  for (const size_t t : {size_t{1}, size_t{2}, size_t{4}}) {
    const Run r = runWorkload(vBatches, t, false, 0);
    if (!r.reachable) {
      std::fprintf(stderr, "schedule not found at %zu threads\n", t);
      rc = 1;
    }
    if (t == 1) vBase = r.seconds;
    if (t == 4 && r.seconds > 0.0) vSpeedup4 = vBase / r.seconds;
    emit(vName, "steal", r);
  }
  {
    const Run r = runWorkload(vBatches, 4, true, 0);
    if (!r.reachable) {
      std::fprintf(stderr, "portfolio found no schedule\n");
      rc = 1;
    }
    emit(vName, "portfolio", r);
  }
  // The 1.5x time-to-verdict gate only makes sense with real parallel
  // hardware underneath; skip it (reporting only) below 4 cores.
  if (hw >= 4.0) {
    const double vRequired = quickMode ? 1.3 : 1.5;
    if (vSpeedup4 < vRequired) {
      std::fprintf(stderr,
                   "time-to-verdict regression: %.2fx at 4 threads "
                   "(< %.2fx)\n",
                   vSpeedup4, vRequired);
      rc = 1;
    }
  } else {
    std::fprintf(stderr,
                 "note: %.0f hardware thread(s) < 4; time-to-verdict gate "
                 "skipped (%.2fx measured)\n",
                 hw, vSpeedup4);
  }
  g_report.write();
  return rc;
}
