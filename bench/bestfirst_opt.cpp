// Optimizer differential bench: one anytime best-first run against the
// paper's guided binary search on the 45-batch workload, both under
// bounded budgets (at this size neither certifies the optimum; the
// in-test differential pins exact equality at sizes the binary oracle
// exhausts). The smoke gate requires the best-first run to deliver a
// schedule at least as good as binary search in at most 0.8x its wall
// time; rows land in BENCH_bestfirst_opt.json.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "plant/plant.hpp"
#include "synthesis/schedule.hpp"

namespace {

std::vector<std::vector<ta::LocId>> plantTargets(const plant::Plant& p) {
  std::vector<std::vector<ta::LocId>> targets(p.sys.numAutomata());
  for (size_t i = 0; i < p.sys.numAutomata(); ++i) {
    const ta::Automaton& a = p.sys.automaton(static_cast<ta::ProcId>(i));
    for (const char* name : {"done", "alldone"}) {
      const ta::LocId l = a.findLocation(name);
      if (l >= 0) {
        targets[i].push_back(l);
        break;
      }
    }
  }
  return targets;
}

struct RunResult {
  synthesis::OptimizeResult res;
  double wallSeconds = 0.0;
};

RunResult runOptimizer(const plant::Plant& p, synthesis::Optimizer which,
                       double budgetSeconds) {
  synthesis::OptimizeOptions oo;
  oo.optimizer = which;
  oo.engine.order = engine::SearchOrder::kDfs;
  oo.engine.dfsReverse = true;
  oo.engine.maxSeconds = budgetSeconds;
  oo.heuristicTargets = plantTargets(p);
  const auto t0 = std::chrono::steady_clock::now();
  RunResult out;
  out.res = synthesis::optimizeMakespan(p.sys, p.goal, p.makespan, oo);
  out.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const bool quick = benchutil::quick();

  // Full mode: the 45-batch guided workload. Binary search gets the
  // same per-probe budget regime the EXPERIMENTS baseline used (probes
  // that exhaust neither verdict in time count as infeasible — the
  // binary result is an upper bound, like any anytime answer); the
  // best-first run gets a fraction of the binary wall time. Quick mode
  // shrinks to 2 batches, where both certify the optimum in seconds.
  const int batches = quick ? 2 : 45;
  const double probeBudget = quick ? 30.0 : 24.0;
  const double bestFirstBudget = quick ? 60.0 : 60.0;

  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(batches);
  cfg.makespanClock = true;
  const auto p = plant::buildPlant(cfg);

  const RunResult binary =
      runOptimizer(*p, synthesis::Optimizer::kBinary, probeBudget);
  const RunResult best =
      runOptimizer(*p, synthesis::Optimizer::kBestFirst, bestFirstBudget);

  std::printf("%d batches:\n", batches);
  std::printf(
      "  binary     makespan %lld%s  %zu runs  %zu states  %.1fs wall\n",
      static_cast<long long>(binary.res.optimalMakespan),
      binary.res.optimal ? "" : " (unproven)", binary.res.runs,
      binary.res.stats.statesExplored, binary.wallSeconds);
  std::printf(
      "  bestfirst  makespan %lld%s  %zu runs  %zu states  %.1fs wall\n",
      static_cast<long long>(best.res.optimalMakespan),
      best.res.optimal ? "" : " (unproven)", best.res.runs,
      best.res.stats.statesExplored, best.wallSeconds);

  benchutil::Report report("bestfirst_opt");
  const std::string suffix = std::to_string(batches) + "batch";
  report.add("binary-" + suffix + "-makespan" +
                 std::to_string(binary.res.optimalMakespan),
             binary.wallSeconds * 1000.0, binary.res.stats.peakBytes,
             binary.res.stats.statesExplored);
  report.add("bestfirst-" + suffix + "-makespan" +
                 std::to_string(best.res.optimalMakespan),
             best.wallSeconds * 1000.0, best.res.stats.peakBytes,
             best.res.stats.statesExplored);
  report.write();

  if (!smoke) return 0;

  int failures = 0;
  if (!binary.res.feasible || !best.res.feasible) {
    std::printf("FAIL: optimizer found no schedule at all\n");
    ++failures;
  }
  if (best.res.optimalMakespan > binary.res.optimalMakespan) {
    std::printf("FAIL: best-first makespan %lld worse than binary %lld\n",
                static_cast<long long>(best.res.optimalMakespan),
                static_cast<long long>(binary.res.optimalMakespan));
    ++failures;
  }
  if (best.wallSeconds > 0.8 * binary.wallSeconds) {
    std::printf("FAIL: best-first wall %.1fs exceeds 0.8x binary %.1fs\n",
                best.wallSeconds, binary.wallSeconds);
    ++failures;
  }
  if (quick &&
      (!binary.res.optimal || !best.res.optimal ||
       best.res.optimalMakespan != binary.res.optimalMakespan)) {
    std::printf("FAIL: quick mode expects both optimizers to certify the "
                "same optimum\n");
    ++failures;
  }
  if (failures == 0) std::printf("bestfirst_opt smoke: PASS\n");
  return failures == 0 ? 0 : 1;
}
