// Pre-exploration optimizer ablation: the same reachability queries at
// --opt-level 0 (the model exactly as built) and --opt-level 2 (full
// ta/ir.hpp pass pipeline), reporting per-workload statesExplored /
// storedZones / wall_ms deltas plus the pass counters that explain
// them.
//
// Workloads:
//   fischer-n7        exhaustive mutex proof; the per-process
//                     trying->waiting guard is implied by the trying
//                     invariant, so guard simplification fires while
//                     the zone graph itself is already minimal — the
//                     honest "nothing to gain" baseline.
//   fischer-instr     the same protocol carrying typical debugging
//                     instrumentation: a bounded global event counter
//                     (written on every edge, read by nothing) and a
//                     per-process debug clock reset alongside x. Both
//                     are dead weight for the mutex query — dead-store
//                     elision collapses the counter's 8-way state
//                     blowup and clock unification halves the DBM
//                     dimension, so this is where exploration and wall
//                     time actually drop.
//   plant-guided-45   the paper's guided 45-batch schedule synthesis
//                     (6 batches under BENCH_QUICK=1).
//   random-<seed>     five generator models from the differential
//                     suite's seed range where the pipeline finds
//                     foldable guards and removable edges/locations —
//                     verdict-equivalence coverage; never-enabled
//                     edges produce no states, so exploration counts
//                     stay put by construction.
//
// Writes BENCH_ir_opt.json at the repo root. `--smoke` (the
// `ir_opt_smoke` perf-smoke ctest entry) additionally enforces the
// gate: identical verdicts on every workload and >= 10% statesExplored
// reduction on at least one.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "../tests/engine/random_model.hpp"
#include "bench_util.hpp"

namespace {

struct Cell {
  bool reachable = false;
  size_t explored = 0;
  size_t storedZones = 0;
  double wallMs = 0.0;
  engine::Stats stats;
};

struct WorkloadRow {
  std::string name;
  Cell opt0;
  Cell opt2;

  [[nodiscard]] bool verdictMatch() const {
    return opt0.reachable == opt2.reachable;
  }
  /// Fraction of opt-level-0 exploration saved by the pipeline.
  [[nodiscard]] double exploredReduction() const {
    if (opt0.explored == 0) return 0.0;
    return 1.0 - static_cast<double>(opt2.explored) /
                     static_cast<double>(opt0.explored);
  }
};

Cell runOnce(const ta::System& sys, const engine::Goal& goal,
             engine::Options opts, int level) {
  opts.optLevel = level;
  engine::Reachability checker(sys, opts);
  const engine::Result res = checker.run(goal);
  Cell c;
  c.reachable = res.reachable;
  c.explored = res.stats.statesExplored;
  c.storedZones = res.stats.storedZones;
  c.wallMs = res.stats.seconds * 1e3;
  c.stats = res.stats;
  return c;
}

WorkloadRow runWorkload(std::string name, const ta::System& sys,
                        const engine::Goal& goal,
                        const engine::Options& opts) {
  WorkloadRow row;
  row.name = std::move(name);
  row.opt0 = runOnce(sys, goal, opts, 0);
  row.opt2 = runOnce(sys, goal, opts, 2);
  std::fprintf(stderr,
               "%-18s opt0: %8zu explored %8zu zones %9.2f ms   "
               "opt2: %8zu explored %8zu zones %9.2f ms   (-%.1f%%)\n",
               row.name.c_str(), row.opt0.explored, row.opt0.storedZones,
               row.opt0.wallMs, row.opt2.explored, row.opt2.storedZones,
               row.opt2.wallMs, row.exploredReduction() * 100.0);
  return row;
}

/// The ablation_engine bench's Fischer protocol (N processes, D=2,
/// K=3: the violation is unreachable, forcing an exhaustive proof).
struct Fischer {
  ta::System sys;
  std::vector<ta::ProcId> procs;
  std::vector<ta::LocId> critical;

  /// `instrumented` adds the debug scaffolding described in the file
  /// comment: a global `events` counter bumped (mod 8) on every edge
  /// and a per-process `dbg<i>` clock reset wherever x<i> is.
  explicit Fischer(int n, bool instrumented = false, int d = 2, int k = 3) {
    const ta::VarId id = sys.addVar("id", 0);
    const ta::VarId events =
        instrumented ? sys.addVar("events", 0) : ta::VarId{-1};
    const auto bump = [&](ta::EdgeBuilder eb) {
      if (instrumented) eb.assign(events, (sys.rd(events) + 1) % sys.lit(8));
    };
    for (int i = 1; i <= n; ++i) {
      const ta::ClockId x = sys.addClock("x" + std::to_string(i));
      const ta::ClockId dbg =
          instrumented ? sys.addClock("dbg" + std::to_string(i)) : 0;
      const ta::ProcId p = sys.addAutomaton("P" + std::to_string(i));
      procs.push_back(p);
      auto& a = sys.automaton(p);
      const ta::LocId idle = a.addLocation("idle");
      const ta::LocId trying = a.addLocation("trying");
      const ta::LocId waiting = a.addLocation("waiting");
      const ta::LocId crit = a.addLocation("critical");
      critical.push_back(crit);
      a.setInvariant(trying, {ta::ccLe(x, d)});
      auto e1 = sys.edge(p, idle, trying).guard(sys.rd(id) == 0).reset(x);
      if (instrumented) e1.reset(dbg);
      bump(e1);
      auto e2 = sys.edge(p, trying, waiting)
                    .when(ta::ccLe(x, d))
                    .reset(x)
                    .assign(id, i);
      if (instrumented) e2.reset(dbg);
      bump(e2);
      bump(sys.edge(p, waiting, crit)
               .when(ta::ccGt(x, k))
               .guard(sys.rd(id) == i));
      bump(sys.edge(p, waiting, idle).guard(sys.rd(id) != i));
      bump(sys.edge(p, crit, idle).assign(id, 0));
      (void)dbg;
    }
    sys.finalize();
  }

  [[nodiscard]] engine::Goal mutexViolation() const {
    engine::Goal bad;
    bad.locations = {{procs[0], critical[0]}, {procs[1], critical[1]}};
    return bad;
  }
};

void writeReport(const std::vector<WorkloadRow>& rows) {
  const std::filesystem::path out =
      benchutil::repoRoot() / "BENCH_ir_opt.json";
  std::ofstream f(out);
  if (!f) return;
  f << "{\n  \"bench\": \"ir_opt\",\n  \"git_rev\": \"" << benchutil::gitRev()
    << "\",\n  \"hostname\": \"" << benchutil::hostName()
    << "\",\n  \"timestamp\": \"" << benchutil::utcTimestamp()
    << "\",\n  \"workloads\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const WorkloadRow& r = rows[i];
    const auto cell = [&f](const char* level, const Cell& c) {
      f << "\"" << level << "\": {\"reachable\": "
        << (c.reachable ? "true" : "false") << ", \"wall_ms\": " << c.wallMs
        << ", \"statesExplored\": " << c.explored
        << ", \"storedZones\": " << c.storedZones;
      f << ", \"foldedExprs\": " << c.stats.foldedExprs
        << ", \"removedLocations\": " << c.stats.removedLocations
        << ", \"removedEdges\": " << c.stats.removedEdges
        << ", \"simplifiedConstraints\": " << c.stats.simplifiedConstraints
        << ", \"elidedVars\": " << c.stats.elidedVars
        << ", \"unifiedClocks\": " << c.stats.unifiedClocks
        << ", \"composedProcesses\": " << c.stats.composedProcesses
        << ", \"optSeconds\": " << c.stats.optSeconds << "}";
    };
    f << "    {\"workload\": \"" << r.name << "\", ";
    cell("opt0", r.opt0);
    f << ", ";
    cell("opt2", r.opt2);
    f << ", \"explored_reduction\": " << r.exploredReduction() << "}"
      << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  f << "  ]\n}\n";
  std::fprintf(stderr, "wrote %s\n", out.string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const bool quick = smoke || benchutil::quick();

  std::vector<WorkloadRow> rows;

  {
    const int n = quick ? 5 : 7;
    Fischer f(n);
    engine::Options o;
    o.order = engine::SearchOrder::kBfs;
    o.maxSeconds = 600.0;
    rows.push_back(runWorkload("fischer-n" + std::to_string(n), f.sys,
                               f.mutexViolation(), o));
  }

  {
    const int n = quick ? 4 : 6;
    Fischer f(n, /*instrumented=*/true);
    engine::Options o;
    o.order = engine::SearchOrder::kBfs;
    o.maxSeconds = 600.0;
    rows.push_back(runWorkload("fischer-instr-n" + std::to_string(n), f.sys,
                               f.mutexViolation(), o));
  }

  {
    const int batches = quick ? 6 : 45;
    plant::PlantConfig cfg;
    cfg.order = plant::standardOrder(batches);
    cfg.guides = plant::GuideLevel::kAll;
    const auto p = plant::buildPlant(cfg);
    engine::Options o;
    o.order = engine::SearchOrder::kDfs;
    o.dfsReverse = true;
    o.maxSeconds = 600.0;
    rows.push_back(runWorkload(
        "plant-guided-" + std::to_string(batches), p->sys, p->goal, o));
  }

  // Seeds where the pipeline has real work (dead edges, removable
  // locations, foldable guards) — picked from the differential suite's
  // 1..40 range by inspecting pass counters.
  for (const uint64_t seed : {3ULL, 7ULL, 11ULL, 19ULL, 31ULL}) {
    engine::RandomModel m(seed);
    engine::Options o;
    o.order = engine::SearchOrder::kBfs;
    o.maxSeconds = 60.0;
    rows.push_back(runWorkload("random-" + std::to_string(seed), *m.sys,
                               m.goal, o));
  }

  writeReport(rows);

  if (smoke) {
    // Gate: the optimizer must never flip a verdict, and must cut
    // exploration by >= 10% somewhere.
    bool ok = true;
    double best = 0.0;
    for (const WorkloadRow& r : rows) {
      if (!r.verdictMatch()) {
        std::fprintf(stderr, "FAIL: %s verdict flipped by optimization\n",
                     r.name.c_str());
        ok = false;
      }
      best = std::max(best, r.exploredReduction());
    }
    if (best < 0.10) {
      std::fprintf(stderr,
                   "FAIL: best statesExplored reduction %.1f%% < 10%%\n",
                   best * 100.0);
      ok = false;
    }
    if (ok) {
      std::fprintf(stderr, "smoke gate passed: best reduction %.1f%%\n",
                   best * 100.0);
    }
    return ok ? 0 : 1;
  }
  return 0;
}
