// Monte-Carlo robustness campaign (paper §6): execute one synthesized
// control program against the simulated plant under a grid of channel
// and unit fault intensities — i.i.d. loss, Gilbert–Elliott bursts,
// jitter + duplication + reordering, per-unit clock drift, and
// local-controller crashes — with N independently seeded trials per
// cell, run in parallel.
//
// Per cell the campaign reports the trial success rate, the P50/P99
// completion-tick overhead versus the ideal (fault-free) run, the mean
// resend count, and watchdog halts; everything lands in
// BENCH_fault_campaign.json.
//
// Gate (--smoke and full runs alike): with the hardened codegen profile
// the program must succeed in 100% of trials on a perfect channel and
// in >= 95% of trials at 5% i.i.d. loss, and re-running a cell with the
// same seeds must reproduce identical per-trial outcomes.
//
// Usage: fault_campaign [--smoke] [--trials N] [--seed S] [--batches B]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "engine/trace.hpp"
#include "plant/plant.hpp"
#include "rcx/fault.hpp"
#include "rcx/plant_sim.hpp"
#include "synthesis/rcx_codegen.hpp"
#include "synthesis/schedule.hpp"

namespace {

constexpr int64_t kSlackTicks = 8000;
constexpr int32_t kTpu = 1000;

struct TrialResult {
  bool ok = false;
  bool watchdogHalted = false;
  int64_t ticks = 0;
  int64_t resends = 0;
};

struct Cell {
  std::string profile;  ///< fault family ("iid", "burst", ...)
  std::string codegen;  ///< "hardened" or "classic"
  double loss = 0.0;
  rcx::FaultPlan plan;
  const synthesis::RcxProgram* program = nullptr;
  int64_t idealTicks = 0;

  std::vector<TrialResult> trials;
};

struct CellSummary {
  int successes = 0;
  double successRate = 0.0;
  int64_t p50Overhead = -1;  ///< over successful trials; -1 = none
  int64_t p99Overhead = -1;
  double meanResends = 0.0;
  int watchdogHalts = 0;
};

rcx::FaultPlan makePlan(const std::string& profile, double loss) {
  rcx::FaultPlan f = rcx::FaultPlan::iidLoss(loss);
  if (profile == "burst") {
    // Bursty outages on top of the background loss: the channel turns
    // Bad on ~2% of messages and then eats 90% of traffic until it
    // recovers (expected burst length 1/0.3 ≈ 3.3 messages).
    f.burst.pGoodToBad = 0.02;
    f.burst.pBadToGood = 0.3;
    f.burst.lossGood = 0.0;
    f.burst.lossBad = 0.9;
  } else if (profile == "jitter") {
    f.jitterTicks = 40;
    f.duplicateProb = 0.05;
    f.reorderProb = 0.05;
  } else if (profile == "drift") {
    f.driftPpm = 500.0;
  } else if (profile == "crash") {
    // ~0.6 expected crashes per run (4-5 units, ~150k ticks); each
    // outage is well inside the watchdog budget.
    f.crash.crashPerTick = 1e-6;
    f.crash.downTicks = 2000;
  }
  return f;
}

TrialResult runTrial(const synthesis::RcxProgram& prog,
                     const plant::PlantConfig& cfg, const rcx::FaultPlan& plan,
                     uint64_t seed) {
  rcx::SimOptions sim;
  sim.messageLossProb = 0.0;
  sim.faults = plan;
  sim.seed = seed;
  sim.slackTicks = kSlackTicks;
  const rcx::SimResult out = rcx::runProgram(prog, cfg, kTpu, sim);
  TrialResult t;
  t.ok = out.ok();
  t.watchdogHalted = out.watchdogHalted;
  t.ticks = out.ticks;
  t.resends =
      out.commandsSent - static_cast<int64_t>(prog.commands.size());
  return t;
}

/// Run every (cell, trial) job across a worker pool. Trial `i` of any
/// cell always uses seed baseSeed + i, so the outcome of a trial is a
/// pure function of (cell plan, program, seed) — independent of the
/// thread count and of which other cells run.
void runCampaign(std::vector<Cell>& cells, const plant::PlantConfig& cfg,
                 int trials, uint64_t baseSeed) {
  struct Job {
    size_t cell;
    int trial;
  };
  std::vector<Job> jobs;
  for (size_t c = 0; c < cells.size(); ++c) {
    cells[c].trials.assign(static_cast<size_t>(trials), TrialResult{});
    for (int t = 0; t < trials; ++t) jobs.push_back(Job{c, t});
  }
  std::atomic<size_t> next{0};
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned nThreads = std::clamp(hw, 1u, 8u);
  std::vector<std::thread> pool;
  pool.reserve(nThreads);
  for (unsigned w = 0; w < nThreads; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const size_t j = next.fetch_add(1, std::memory_order_relaxed);
        if (j >= jobs.size()) return;
        Cell& cell = cells[jobs[j].cell];
        const int t = jobs[j].trial;
        cell.trials[static_cast<size_t>(t)] =
            runTrial(*cell.program, cfg, cell.plan,
                     baseSeed + static_cast<uint64_t>(t));
      }
    });
  }
  for (std::thread& th : pool) th.join();
}

CellSummary summarize(const Cell& cell) {
  CellSummary s;
  std::vector<int64_t> overheads;
  int64_t resendSum = 0;
  for (const TrialResult& t : cell.trials) {
    resendSum += t.resends;
    if (t.watchdogHalted) ++s.watchdogHalts;
    if (t.ok) {
      ++s.successes;
      overheads.push_back(t.ticks - cell.idealTicks);
    }
  }
  const size_t n = cell.trials.size();
  s.successRate = n == 0 ? 0.0 : static_cast<double>(s.successes) /
                                     static_cast<double>(n);
  s.meanResends = n == 0 ? 0.0 : static_cast<double>(resendSum) /
                                     static_cast<double>(n);
  if (!overheads.empty()) {
    std::sort(overheads.begin(), overheads.end());
    s.p50Overhead = overheads[overheads.size() / 2];
    const size_t i99 = std::min(
        overheads.size() - 1,
        static_cast<size_t>(
            std::ceil(0.99 * static_cast<double>(overheads.size()))) -
            1);
    s.p99Overhead = overheads[i99];
  }
  return s;
}

void writeJson(const std::vector<Cell>& cells, int batches, int trials,
               uint64_t seed, double wallMs) {
  const std::filesystem::path out =
      benchutil::repoRoot() / "BENCH_fault_campaign.json";
  std::ofstream f(out);
  if (!f) return;
  f << "{\n  \"bench\": \"fault_campaign\",\n"
    << "  \"git_rev\": \"" << benchutil::gitRev() << "\",\n"
    << "  \"hostname\": \"" << benchutil::hostName() << "\",\n"
    << "  \"timestamp\": \"" << benchutil::utcTimestamp() << "\",\n"
    << "  \"batches\": " << batches << ",\n"
    << "  \"trials_per_cell\": " << trials << ",\n"
    << "  \"base_seed\": " << seed << ",\n"
    << "  \"wall_ms\": " << wallMs << ",\n  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const CellSummary s = summarize(c);
    f << "    {\"profile\": \"" << c.profile << "\", \"codegen\": \""
      << c.codegen << "\", \"loss\": " << c.loss
      << ", \"trials\": " << c.trials.size()
      << ", \"successes\": " << s.successes
      << ", \"success_rate\": " << s.successRate
      << ", \"ideal_ticks\": " << c.idealTicks
      << ", \"p50_overhead_ticks\": " << s.p50Overhead
      << ", \"p99_overhead_ticks\": " << s.p99Overhead
      << ", \"mean_resends\": " << s.meanResends
      << ", \"watchdog_halts\": " << s.watchdogHalts << "}"
      << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  f << "  ]\n}\n";
  std::printf("\nwrote %s\n", out.string().c_str());
}

const Cell* findCell(const std::vector<Cell>& cells,
                     const std::string& profile, const std::string& codegen,
                     double loss) {
  for (const Cell& c : cells) {
    if (c.profile == profile && c.codegen == codegen &&
        std::abs(c.loss - loss) < 1e-12) {
      return &c;
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int trials = -1;
  int batches = -1;
  uint64_t seed = 5000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      trials = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--batches") == 0 && i + 1 < argc) {
      batches = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: fault_campaign [--smoke] [--trials N] "
                           "[--batches B] [--seed S]\n");
      return 2;
    }
  }
  if (batches < 1) batches = smoke ? 2 : 3;
  if (trials < 1) {
    trials = smoke ? 40 : (benchutil::quick() ? 12 : 50);
  }

  const auto wall0 = std::chrono::steady_clock::now();

  // 1. One schedule, synthesized once; both codegen profiles run it.
  plant::PlantConfig cfg;
  cfg.order = plant::standardOrder(batches);
  const auto p = plant::buildPlant(cfg);
  engine::Options opts;
  opts.order = engine::SearchOrder::kDfs;
  opts.dfsReverse = true;
  opts.maxSeconds = 120.0;
  engine::Reachability checker(p->sys, opts);
  const engine::Result res = checker.run(p->goal);
  if (!res.reachable) {
    std::fputs("no schedule found\n", stderr);
    return 1;
  }
  std::string err;
  const auto ct = engine::concretize(p->sys, res.trace, &err);
  if (!ct.has_value()) {
    std::fprintf(stderr, "concretization failed: %s\n", err.c_str());
    return 1;
  }
  const synthesis::Schedule sched = synthesis::project(p->sys, *ct);

  synthesis::CodegenOptions classicCg;
  classicCg.ticksPerTimeUnit = kTpu;
  const synthesis::RcxProgram classicProg =
      synthesis::synthesize(sched, classicCg);
  const synthesis::RcxProgram hardenedProg = synthesis::synthesize(
      sched, synthesis::CodegenOptions::hardened(kTpu, kSlackTicks));

  // 2. Fault-free baselines (the "ideal schedule" the overhead
  //    percentiles are measured against).
  const TrialResult idealHardened =
      runTrial(hardenedProg, cfg, rcx::FaultPlan{}, seed);
  const TrialResult idealClassic =
      runTrial(classicProg, cfg, rcx::FaultPlan{}, seed);
  if (!idealHardened.ok || !idealClassic.ok) {
    std::fputs("FAIL: fault-free baseline run did not complete cleanly\n",
               stderr);
    return 1;
  }
  std::printf("%d batches, %zu commands; ideal ticks: hardened %lld, "
              "classic %lld; %d trials/cell\n",
              batches, hardenedProg.commands.size(),
              static_cast<long long>(idealHardened.ticks),
              static_cast<long long>(idealClassic.ticks), trials);

  // 3. The grid. Smoke keeps only the two gate cells; the full campaign
  //    sweeps every fault family and adds a classic-codegen comparison.
  std::vector<Cell> cells;
  const auto add = [&](const std::string& profile, double loss,
                       const synthesis::RcxProgram& prog,
                       const std::string& codegen, int64_t ideal) {
    Cell c;
    c.profile = profile;
    c.codegen = codegen;
    c.loss = loss;
    c.plan = makePlan(profile, loss);
    c.program = &prog;
    c.idealTicks = ideal;
    cells.push_back(std::move(c));
  };
  if (smoke) {
    add("iid", 0.0, hardenedProg, "hardened", idealHardened.ticks);
    add("iid", 0.05, hardenedProg, "hardened", idealHardened.ticks);
  } else {
    for (const char* profile : {"iid", "burst", "jitter", "drift", "crash"}) {
      for (const double loss : {0.0, 0.01, 0.05, 0.10, 0.20}) {
        add(profile, loss, hardenedProg, "hardened", idealHardened.ticks);
      }
    }
    // Classic Figure-6 codegen under the same adversary: the hardening
    // delta the EXPERIMENTS table reports.
    for (const double loss : {0.05, 0.20}) {
      add("iid", loss, classicProg, "classic", idealClassic.ticks);
    }
  }

  runCampaign(cells, cfg, trials, seed);

  // 4. Same-seed reproducibility: re-run the busiest gate cell and
  //    demand bit-identical per-trial outcomes (acceptance criterion —
  //    the split-stream channel makes trials pure functions of seed).
  {
    std::vector<Cell> again;
    Cell c;
    c.profile = "iid";
    c.codegen = "hardened";
    c.loss = smoke ? 0.05 : 0.20;
    c.plan = makePlan("iid", c.loss);
    c.program = &hardenedProg;
    c.idealTicks = idealHardened.ticks;
    again.push_back(std::move(c));
    runCampaign(again, cfg, trials, seed);
    const Cell* orig =
        findCell(cells, "iid", "hardened", again[0].loss);
    for (int t = 0; t < trials; ++t) {
      const TrialResult& a = orig->trials[static_cast<size_t>(t)];
      const TrialResult& b = again[0].trials[static_cast<size_t>(t)];
      if (a.ok != b.ok || a.ticks != b.ticks || a.resends != b.resends ||
          a.watchdogHalted != b.watchdogHalted) {
        std::fprintf(stderr,
                     "FAIL: trial %d not reproducible at identical seed "
                     "(ticks %lld vs %lld)\n",
                     t, static_cast<long long>(a.ticks),
                     static_cast<long long>(b.ticks));
        return 1;
      }
    }
    std::puts("reproducibility: identical seeds -> identical trial "
              "outcomes (checked one full cell twice)");
  }

  // 5. Report.
  std::printf("\n%8s %9s %6s %9s %12s %12s %10s %5s\n", "profile", "codegen",
              "loss", "success", "p50 ovh", "p99 ovh", "resends", "wd");
  for (const Cell& c : cells) {
    const CellSummary s = summarize(c);
    std::printf("%8s %9s %6.2f %8.1f%% %12lld %12lld %10.1f %5d\n",
                c.profile.c_str(), c.codegen.c_str(), c.loss,
                100.0 * s.successRate, static_cast<long long>(s.p50Overhead),
                static_cast<long long>(s.p99Overhead), s.meanResends,
                s.watchdogHalts);
  }
  const double wallMs = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - wall0)
                            .count();
  writeJson(cells, batches, trials, seed, wallMs);

  // 6. The robustness gate.
  const Cell* nominal = findCell(cells, "iid", "hardened", 0.0);
  const Cell* lossy = findCell(cells, "iid", "hardened", 0.05);
  const CellSummary sn = summarize(*nominal);
  const CellSummary sl = summarize(*lossy);
  bool pass = true;
  if (sn.successes != static_cast<int>(nominal->trials.size())) {
    std::printf("GATE FAIL: nominal channel success %d/%zu (need 100%%)\n",
                sn.successes, nominal->trials.size());
    pass = false;
  }
  if (sl.successRate < 0.95) {
    std::printf("GATE FAIL: 5%% i.i.d. loss success %.1f%% (need >= 95%%)\n",
                100.0 * sl.successRate);
    pass = false;
  }
  if (pass) {
    std::printf("GATE PASS: 100%% nominal, %.1f%% at 5%% i.i.d. loss "
                "(>= 95%% required)\n",
                100.0 * sl.successRate);
  }
  return pass ? 0 : 1;
}
